// COO and CSR container invariants.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "matrix/convert.h"
#include "matrix/coo.h"
#include "matrix/csr.h"

namespace tsg {
namespace {

TEST(Coo, WellFormedChecksBounds) {
  Coo<double> c;
  c.rows = 3;
  c.cols = 3;
  c.push_back(0, 0, 1.0);
  EXPECT_TRUE(c.well_formed());
  c.push_back(3, 0, 1.0);
  EXPECT_FALSE(c.well_formed());
  c.row.back() = 2;
  c.col.back() = -1;
  EXPECT_FALSE(c.well_formed());
}

TEST(Coo, SortAndCombineMergesDuplicates) {
  Coo<double> c;
  c.rows = c.cols = 4;
  c.push_back(2, 1, 1.0);
  c.push_back(0, 3, 2.0);
  c.push_back(2, 1, 0.5);
  c.push_back(2, 0, -1.0);
  c.sort_and_combine();
  ASSERT_EQ(c.nnz(), 3);
  EXPECT_TRUE(c.is_sorted_unique());
  EXPECT_EQ(c.row[0], 0);
  EXPECT_EQ(c.col[0], 3);
  EXPECT_EQ(c.row[1], 2);
  EXPECT_EQ(c.col[1], 0);
  EXPECT_DOUBLE_EQ(c.val[2], 1.5);  // merged 1.0 + 0.5 at (2,1)
}

TEST(Coo, SortAndCombineEmptyIsNoop) {
  Coo<double> c;
  c.rows = c.cols = 5;
  c.sort_and_combine();
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_TRUE(c.is_sorted_unique());
}

TEST(Csr, ValidateAcceptsGenerated) {
  const Csr<double> a = gen::erdos_renyi(50, 70, 300, 1);
  EXPECT_TRUE(a.validate().empty()) << a.validate();
  EXPECT_TRUE(a.rows_sorted());
}

TEST(Csr, ValidateRejectsBadRowPtr) {
  Csr<double> a(3, 3);
  a.row_ptr = {0, 2, 1, 1};  // not monotone
  a.col_idx = {0};
  a.val = {1.0};
  EXPECT_FALSE(a.validate().empty());
}

TEST(Csr, ValidateRejectsOutOfRangeColumn) {
  Csr<double> a(2, 2);
  a.row_ptr = {0, 1, 1};
  a.col_idx = {5};
  a.val = {1.0};
  EXPECT_FALSE(a.validate().empty());
}

TEST(Csr, ValidateRejectsSizeMismatch) {
  Csr<double> a(2, 2);
  a.row_ptr = {0, 1, 2};
  a.col_idx = {0, 1};
  a.val = {1.0};  // one value short
  EXPECT_FALSE(a.validate().empty());
}

TEST(Csr, SortRowsFixesShuffledColumns) {
  Csr<double> a(2, 8);
  a.row_ptr = {0, 4, 6};
  a.col_idx = {5, 1, 7, 3, 2, 0};
  a.val = {5.0, 1.0, 7.0, 3.0, 2.0, 0.5};
  EXPECT_FALSE(a.rows_sorted());
  a.sort_rows();
  EXPECT_TRUE(a.rows_sorted());
  // Values must travel with their columns.
  EXPECT_EQ(a.col_idx[0], 1);
  EXPECT_DOUBLE_EQ(a.val[0], 1.0);
  EXPECT_EQ(a.col_idx[3], 7);
  EXPECT_DOUBLE_EQ(a.val[3], 7.0);
  EXPECT_EQ(a.col_idx[4], 0);
  EXPECT_DOUBLE_EQ(a.val[4], 0.5);
}

TEST(Csr, RowNnzAndBytes) {
  const Csr<double> a = gen::banded(100, 2, 2);
  EXPECT_EQ(a.row_nnz(0), 3);   // clipped band
  EXPECT_EQ(a.row_nnz(50), 5);  // full band
  EXPECT_GT(a.bytes(), 0u);
  EXPECT_EQ(a.bytes(), a.row_ptr.size() * 8 + a.col_idx.size() * 4 + a.val.size() * 8);
}

TEST(Csr, EmptyMatrix) {
  const Csr<double> a(0, 0);
  EXPECT_EQ(a.nnz(), 0);
  EXPECT_TRUE(a.validate().empty()) << a.validate();
}

}  // namespace
}  // namespace tsg
