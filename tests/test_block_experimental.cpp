// Dimension-generic block SpGEMM (the tile-size ablation substrate):
// correctness at every supported block edge, plus the storage relations the
// paper's Section 3.2 argument predicts.
#include <gtest/gtest.h>

#include "core/block_experimental.h"
#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "test_support.h"

namespace tsg {
namespace {

using experimental::block_spgemm;
using experimental::block_to_csr;
using experimental::csr_to_block;

template <int Dim>
void check_roundtrip(const Csr<double>& a, const char* what) {
  SCOPED_TRACE(what);
  const auto m = csr_to_block<Dim>(a);
  EXPECT_EQ(m.nnz(), a.nnz());
  test::expect_equal(a, block_to_csr(m), what, 1e-15);
}

TEST(BlockExperimental, RoundTripAllDims) {
  for (auto make : {test::make_er_small, test::make_band, test::make_blocks,
                    test::make_rmat_small, test::make_clustered}) {
    const Csr<double> a = make();
    check_roundtrip<8>(a, "dim8");
    check_roundtrip<16>(a, "dim16");
    check_roundtrip<32>(a, "dim32");
  }
}

template <int Dim>
void check_spgemm(const Csr<double>& a, const char* what) {
  SCOPED_TRACE(what);
  const Csr<double> expected = spgemm_reference(a, a);
  const Csr<double> actual = block_to_csr(block_spgemm(csr_to_block<Dim>(a), csr_to_block<Dim>(a)));
  test::expect_equal(expected, actual, what);
}

TEST(BlockExperimental, SpgemmMatchesReferenceDim8) {
  check_spgemm<8>(test::make_er_small(), "er");
  check_spgemm<8>(test::make_band(), "band");
  check_spgemm<8>(test::make_blocks(), "blocks");
}

TEST(BlockExperimental, SpgemmMatchesReferenceDim16) {
  check_spgemm<16>(test::make_er_small(), "er");
  check_spgemm<16>(test::make_band_wide(), "band");
  check_spgemm<16>(test::make_rmat_small(), "rmat");
}

TEST(BlockExperimental, SpgemmMatchesReferenceDim32) {
  check_spgemm<32>(test::make_er_small(), "er");
  check_spgemm<32>(test::make_blocks_large(), "blocks");
  check_spgemm<32>(test::make_stencil(), "stencil");
}

TEST(BlockExperimental, Dim16AgreesWithProductionTileSpgemm) {
  const Csr<double> a = test::make_clustered();
  const Csr<double> block16 =
      block_to_csr(block_spgemm(csr_to_block<16>(a), csr_to_block<16>(a)));
  const Csr<double> production = spgemm_tile(a, a);
  test::expect_equal(production, block16, "dim16 vs production");
}

TEST(BlockExperimental, FullBlockBoundaries) {
  // Dense blocks matching each edge exactly: row pointers hit their type
  // maxima (dim8: 56 = 7*8; dim16: 240; dim32: 992 needs uint16).
  for (int dim_case = 0; dim_case < 3; ++dim_case) {
    if (dim_case == 0) {
      const Csr<double> a = gen::dense_blocks(2, 8, 1);
      const auto m = csr_to_block<8>(a);
      EXPECT_EQ(m.num_blocks(), 2);
      EXPECT_EQ(m.block_nnz[1] - m.block_nnz[0], 64);
      check_spgemm<8>(a, "full8");
    } else if (dim_case == 1) {
      const Csr<double> a = gen::dense_blocks(2, 16, 2);
      const auto m = csr_to_block<16>(a);
      EXPECT_EQ(m.block_nnz[1] - m.block_nnz[0], 256);
      check_spgemm<16>(a, "full16");
    } else {
      const Csr<double> a = gen::dense_blocks(2, 32, 3);
      const auto m = csr_to_block<32>(a);
      EXPECT_EQ(m.block_nnz[1] - m.block_nnz[0], 1024);
      check_spgemm<32>(a, "full32");
    }
  }
}

TEST(BlockExperimental, StorageRelationsMatchSection32Argument) {
  // For a matrix with well-filled 16x16 tiles:
  //  * dim8 stores four times as many masks/row-pointers per area unit but
  //    each mask is 1 byte -> metadata comparable, more blocks;
  //  * dim32 masks cost 4 bytes/row and row pointers 2 bytes -> per-block
  //    metadata grows; with identical nonzero payloads, 16 sits at the
  //    paper's sweet spot for this structure.
  const Csr<double> a = gen::banded(2000, 14, 4);
  const std::size_t s8 = csr_to_block<8>(a).bytes();
  const std::size_t s16 = csr_to_block<16>(a).bytes();
  const std::size_t s32 = csr_to_block<32>(a).bytes();
  EXPECT_LT(s16, s8);
  EXPECT_LT(s16, s32);
}

TEST(BlockExperimental, EmptyAndMismatch) {
  const auto e = csr_to_block<16>(Csr<double>(20, 20));
  EXPECT_EQ(e.num_blocks(), 0);
  EXPECT_EQ(block_to_csr(e).nnz(), 0);
  const auto a = csr_to_block<16>(gen::erdos_renyi(20, 30, 50, 5));
  const auto b = csr_to_block<16>(gen::erdos_renyi(31, 20, 50, 6));
  EXPECT_THROW(block_spgemm(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace tsg
