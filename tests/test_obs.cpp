// Observability subsystem (src/obs): trace ring buffers, Chrome trace JSON,
// the metrics registry, snapshot deltas, and the runtime gates. Registered
// with the `obs` ctest label; scripts/check.sh runs it under ASan/UBSan with
// tracing enabled to prove the concurrent emit path is clean.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/memory.h"
#include "common/parallel.h"
#include "json_checker.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace {

using namespace tsg;
using test::JsonChecker;

/// Every test starts from a quiet collector and disabled gates, and leaves
/// the process the same way (the binary shares one singleton).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TraceCollector::instance().set_enabled(false);
    obs::TraceCollector::instance().clear();
    obs::set_metrics_detail_enabled(false);
  }
  void TearDown() override {
    obs::TraceCollector::instance().set_enabled(false);
    obs::TraceCollector::instance().clear();
    obs::set_metrics_detail_enabled(false);
  }
};

TEST_F(ObsTest, DisabledGateRecordsNothing) {
  ASSERT_FALSE(obs::trace_enabled());
  {
    TSG_TRACE_SPAN("obs.test.off");
    TSG_TRACE_INSTANT("obs.test.off.instant", 3);
  }
  const auto events = obs::TraceCollector::instance().drain();
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(obs::TraceCollector::instance().dropped(), 0u);
}

TEST_F(ObsTest, SpanAndInstantRoundTrip) {
  auto& tc = obs::TraceCollector::instance();
  tc.set_enabled(true);
  {
    TSG_TRACE_SPAN("obs.test.span", 42);
    TSG_TRACE_INSTANT("obs.test.instant", 7);
  }
  tc.set_enabled(false);
  const auto events = tc.drain();
  ASSERT_EQ(events.size(), 2u);
  const obs::TraceEvent* span = nullptr;
  const obs::TraceEvent* instant = nullptr;
  for (const auto& e : events) {
    if (std::string_view(e.name) == "obs.test.span") span = &e;
    if (std::string_view(e.name) == "obs.test.instant") instant = &e;
  }
  ASSERT_NE(span, nullptr);
  ASSERT_NE(instant, nullptr);
  EXPECT_EQ(span->phase, 'X');
  EXPECT_EQ(span->arg, 42);
  EXPECT_GE(span->dur_us, 0.0);
  EXPECT_EQ(instant->phase, 'i');
  EXPECT_EQ(instant->arg, 7);
  EXPECT_DOUBLE_EQ(instant->dur_us, 0.0);
  // The instant fires inside the span: its timestamp is within the span.
  EXPECT_GE(instant->ts_us, span->ts_us);
  EXPECT_LE(instant->ts_us, span->ts_us + span->dur_us);
}

TEST_F(ObsTest, BeginEndSpansRecordPairedPhases) {
  auto& tc = obs::TraceCollector::instance();
  tc.set_enabled(true);
  TSG_TRACE_BEGIN("obs.test.be", 5);
  TSG_TRACE_INSTANT("obs.test.between");
  TSG_TRACE_END("obs.test.be");
  tc.set_enabled(false);
  const auto events = tc.drain();
  ASSERT_EQ(events.size(), 3u);
  const obs::TraceEvent* begin = nullptr;
  const obs::TraceEvent* end = nullptr;
  for (const auto& e : events) {
    if (std::string_view(e.name) != "obs.test.be") continue;
    if (e.phase == 'B') begin = &e;
    if (e.phase == 'E') end = &e;
  }
  ASSERT_NE(begin, nullptr);
  ASSERT_NE(end, nullptr);
  EXPECT_EQ(begin->arg, 5);
  EXPECT_LE(begin->ts_us, end->ts_us);
  // Unlike TSG_TRACE_SPAN's scoped 'X' event, B/E carry no duration of
  // their own: the viewer derives it from the pair.
  EXPECT_DOUBLE_EQ(begin->dur_us, 0.0);
  EXPECT_DOUBLE_EQ(end->dur_us, 0.0);
}

TEST_F(ObsTest, RingWraparoundKeepsNewestAndCountsDropped) {
  auto& tc = obs::TraceCollector::instance();
  tc.set_ring_capacity(16);
  tc.set_enabled(true);
  for (int i = 0; i < 40; ++i) {
    obs::trace_instant("obs.test.wrap", i);
  }
  tc.set_enabled(false);
  const auto events = tc.drain();
  ASSERT_EQ(events.size(), 16u);
  // Oldest events are overwritten; the survivors are the newest 16, in order.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].arg, 24 + i);
  }
  EXPECT_EQ(tc.dropped(), 24u);
  tc.clear();
  EXPECT_EQ(tc.dropped(), 0u);
  tc.set_ring_capacity(std::size_t{1} << 15);  // restore the default
}

TEST_F(ObsTest, ConcurrentEmittersFromParallelFor) {
  auto& tc = obs::TraceCollector::instance();
  tc.set_enabled(true);
  constexpr int kTasks = 512;
  parallel_for(0, kTasks, [](int i) { obs::trace_instant("obs.test.parallel", i); });
  tc.set_enabled(false);
  const auto events = tc.drain();
  std::vector<bool> seen(kTasks, false);
  for (const auto& e : events) {
    ASSERT_STREQ(e.name, "obs.test.parallel");
    ASSERT_GE(e.arg, 0);
    ASSERT_LT(e.arg, kTasks);
    EXPECT_FALSE(seen[static_cast<std::size_t>(e.arg)]);
    seen[static_cast<std::size_t>(e.arg)] = true;
  }
  // Every iteration emitted exactly once, across however many threads ran.
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kTasks));
  // Drain output is globally time-ordered.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
  EXPECT_EQ(tc.dropped(), 0u);
}

TEST_F(ObsTest, ChromeTraceJsonIsWellFormed) {
  auto& tc = obs::TraceCollector::instance();
  tc.set_enabled(true);
  {
    TSG_TRACE_SPAN("obs.test.json", 5);
    TSG_TRACE_INSTANT("obs.test.json.instant");
  }
  tc.set_enabled(false);
  std::ostringstream out;
  tc.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"obs.test.json\""), std::string::npos);
  EXPECT_NE(json.find("\"obs.test.json.instant\""), std::string::npos);
  // write_chrome_trace drains: a second dump has no events left.
  EXPECT_TRUE(tc.drain().empty());
}

TEST_F(ObsTest, CounterAndHistogramSemantics) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& c = reg.counter("obs.test.counter");
  const std::int64_t base = c.value();
  c.inc();
  c.add(9);
  EXPECT_EQ(c.value(), base + 10);
  // Same name returns the same instrument (stable reference).
  EXPECT_EQ(&reg.counter("obs.test.counter"), &c);

  obs::Histogram& h = reg.histogram("obs.test.hist", {0, 4, 16});
  h.reset();
  h.observe(-1);  // <= 0 -> bucket 0
  h.observe(0);   // inclusive upper bound -> bucket 0
  h.observe(4);   // inclusive upper bound -> bucket 1
  h.observe(5);   // -> bucket 2
  h.observe(99);  // -> overflow bucket
  const std::vector<std::int64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), -1 + 0 + 4 + 5 + 99);
  // Bounds apply on creation only; a mismatched re-request returns the
  // original instrument.
  EXPECT_EQ(&reg.histogram("obs.test.hist", {1, 2}), &h);
  EXPECT_EQ(h.bounds(), (std::vector<std::int64_t>{0, 4, 16}));
}

TEST_F(ObsTest, SnapshotDeltaAndGauges) {
  auto& reg = obs::MetricsRegistry::instance();
  static std::int64_t gauge_value = 17;
  reg.register_gauge("obs.test.gauge", [] { return gauge_value; });

  obs::Counter& c = reg.counter("obs.test.delta.counter");
  obs::Histogram& h = reg.histogram("obs.test.delta.hist", {10, 100});
  const obs::MetricsSnapshot before = reg.snapshot();

  c.add(5);
  h.observe(50);
  reg.counter("obs.test.delta.fresh").add(3);  // absent from `before`
  gauge_value = 23;

  const obs::MetricsSnapshot after = reg.snapshot();
  const obs::MetricsSnapshot d = obs::MetricsSnapshot::delta(before, after);

  EXPECT_EQ(d.counter("obs.test.delta.counter"), 5);
  EXPECT_EQ(d.counter("obs.test.delta.fresh"), 3);  // counts from zero
  EXPECT_EQ(d.counter("obs.test.absent"), 0);
  EXPECT_EQ(d.gauge("obs.test.gauge"), 23);  // gauges keep the after-value

  const obs::MetricsSnapshot::Hist* hd = d.histogram("obs.test.delta.hist");
  ASSERT_NE(hd, nullptr);
  EXPECT_EQ(hd->count, 1);
  EXPECT_EQ(hd->sum, 50);
  ASSERT_EQ(hd->counts.size(), 3u);
  EXPECT_EQ(hd->counts[1], 1);  // 50 lands in (10, 100]
}

TEST_F(ObsTest, RegistryJsonIsWellFormed) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("obs.test.json.counter").add(2);
  reg.histogram("obs.test.json.hist", {1, 2, 3}).observe(2);
  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"obs.test.json.counter\""), std::string::npos);
}

TEST_F(ObsTest, ParallelForCountersAndDetailGate) {
  auto& reg = obs::MetricsRegistry::instance();

  // Detail gate off: the always-on call/task counters move, the imbalance
  // histogram does not.
  const obs::MetricsSnapshot before_off = reg.snapshot();
  parallel_for(0, 100, [](int) {});
  const obs::MetricsSnapshot d_off =
      obs::MetricsSnapshot::delta(before_off, reg.snapshot());
  EXPECT_EQ(d_off.counter("parallel_for.calls"), 1);
  EXPECT_EQ(d_off.counter("parallel_for.tasks"), 100);
  if (const auto* h = d_off.histogram("parallel_for.imbalance_pct")) {
    EXPECT_EQ(h->count, 0);
  }

  // Detail gate on: one imbalance observation per parallel_for call.
  obs::set_metrics_detail_enabled(true);
  const obs::MetricsSnapshot before_on = reg.snapshot();
  parallel_for(0, 100, [](int) {});
  obs::set_metrics_detail_enabled(false);
  const obs::MetricsSnapshot d_on =
      obs::MetricsSnapshot::delta(before_on, reg.snapshot());
  EXPECT_EQ(d_on.counter("parallel_for.calls"), 1);
  const obs::MetricsSnapshot::Hist* h = d_on.histogram("parallel_for.imbalance_pct");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1);
}

// ---------------------------------------------------------------------------
// Request-context propagation (PR 8 tentpole)
// ---------------------------------------------------------------------------

TEST_F(ObsTest, RequestScopeStampsTraceEventsAndChromeJson) {
  auto& tc = obs::TraceCollector::instance();
  tc.set_enabled(true);
  {
    obs::RequestContext rctx{obs::mint_trace_id(4812), 4812, 7};
    obs::RequestScope scope(rctx);
    EXPECT_EQ(obs::current_request().request_id, 4812u);
    TSG_TRACE_INSTANT("obs.test.req.tagged", 1);
  }
  // Outside the scope the ambient context is empty again.
  EXPECT_EQ(obs::current_request().request_id, 0u);
  TSG_TRACE_INSTANT("obs.test.req.untagged", 2);
  tc.set_enabled(false);

  std::ostringstream out;
  tc.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // The tagged event carries args.req; the untagged one must not.
  const std::size_t tagged = json.find("\"obs.test.req.tagged\"");
  const std::size_t untagged = json.find("\"obs.test.req.untagged\"");
  ASSERT_NE(tagged, std::string::npos);
  ASSERT_NE(untagged, std::string::npos);
  const std::size_t tagged_end = json.find('\n', tagged);
  EXPECT_NE(json.substr(tagged, tagged_end - tagged).find("\"req\":4812"),
            std::string::npos);
  const std::size_t untagged_end = json.find('\n', untagged);
  EXPECT_EQ(json.substr(untagged, untagged_end - untagged).find("\"req\""),
            std::string::npos);
}

TEST_F(ObsTest, RequestScopesNestAndRestore) {
  obs::RequestScope outer(obs::RequestContext{1, 10, 0});
  EXPECT_EQ(obs::current_request().request_id, 10u);
  {
    obs::RequestScope inner(obs::RequestContext{2, 20, 0});
    EXPECT_EQ(obs::current_request().request_id, 20u);
  }
  EXPECT_EQ(obs::current_request().request_id, 10u);
}

TEST_F(ObsTest, MintTraceIdIsDeterministicPerSaltAndDistinctPerRequest) {
  obs::set_trace_salt(0x5eed);
  const std::uint64_t a = obs::mint_trace_id(1);
  const std::uint64_t b = obs::mint_trace_id(2);
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(obs::mint_trace_id(1), a);  // pure function of (id, salt)
  obs::set_trace_salt(0xfeed);
  EXPECT_NE(obs::mint_trace_id(1), a);  // new salt, new track namespace
}

TEST_F(ObsTest, TraceRingGaugesAppearInSnapshots) {
  auto& tc = obs::TraceCollector::instance();
  tc.set_enabled(true);
  TSG_TRACE_INSTANT("obs.test.gauges", 1);
  tc.set_enabled(false);
  EXPECT_GE(tc.ring_high_water(), 1u);
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  EXPECT_GT(snap.gauge("trace.ring_capacity"), 0);
  EXPECT_GE(snap.gauge("trace.ring_high_water"), 1);
  EXPECT_GE(snap.gauge("trace.dropped"), 0);
  tc.clear();
}

TEST_F(ObsTest, SnapshotJsonCarriesHistogramBounds) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.histogram("obs.test.bounds.hist", {7, 77}).observe(8);
  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  const std::size_t at = json.find("\"obs.test.bounds.hist\"");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(json.find("\"bounds\": [7,77]", at), std::string::npos);
}

// ---------------------------------------------------------------------------
// Structured logging
// ---------------------------------------------------------------------------

/// Point the log sink at a local stream, restore on exit. Level is forced to
/// debug for the duration so fixtures do not depend on ambient TSG_LOG_LEVEL.
class LogCapture {
 public:
  LogCapture() : saved_level_(obs::log_level()) {
    obs::set_log_sink(&out_);
    obs::set_log_level(obs::LogLevel::kDebug);
  }
  ~LogCapture() {
    obs::set_log_sink(nullptr);
    obs::set_log_level(saved_level_);
  }
  std::string text() const { return out_.str(); }
  std::vector<std::string> lines() const {
    std::vector<std::string> ls;
    std::istringstream in(out_.str());
    for (std::string l; std::getline(in, l);) ls.push_back(l);
    return ls;
  }

 private:
  std::ostringstream out_;
  obs::LogLevel saved_level_;
};

TEST_F(ObsTest, LogRecordsAreJsonLinesWithFieldsAndContext) {
  LogCapture capture;
  {
    obs::RequestScope scope(obs::RequestContext{99, 4812, 0});
    TSG_LOG_WARN("obs.test.event", {"stalled_ms", 240}, {"retry", true},
                 {"why", "no \"progress\""}, {"rate", 0.5});
  }
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& rec = lines[0];
  EXPECT_TRUE(JsonChecker(rec).valid()) << rec;
  EXPECT_NE(rec.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(rec.find("\"event\":\"obs.test.event\""), std::string::npos);
  EXPECT_NE(rec.find("\"request_id\":4812"), std::string::npos);
  EXPECT_NE(rec.find("\"trace_id\":99"), std::string::npos);
  EXPECT_NE(rec.find("\"stalled_ms\":240"), std::string::npos);
  EXPECT_NE(rec.find("\"retry\":true"), std::string::npos);
  EXPECT_NE(rec.find("\\\"progress\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(rec.find("test_obs.cpp:"), std::string::npos);     // site stamp
}

TEST_F(ObsTest, LogLevelGateFiltersBelowThreshold) {
  LogCapture capture;
  obs::set_log_level(obs::LogLevel::kError);
  TSG_LOG_DEBUG("obs.test.filtered");
  TSG_LOG_WARN("obs.test.filtered");
  TSG_LOG_ERROR("obs.test.passes");
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("obs.test.passes"), std::string::npos);
}

TEST_F(ObsTest, LogRateLimiterSuppressesAndReportsTheGap) {
  LogCapture capture;
  // A hand-built site with a 2-token bucket and no refill: of five records,
  // two emit, three are suppressed at the site.
  obs::LogSite site{__FILE__, __LINE__, /*burst_millis=*/2000,
                    /*refill_millis_per_sec=*/0};
  for (int i = 0; i < 5; ++i) {
    obs::log_write(site, obs::LogLevel::kWarn, "obs.test.flood", {{"i", i}});
  }
  EXPECT_EQ(capture.lines().size(), 2u);
  EXPECT_EQ(site.suppressed.load(), 3u);
  // Hand the site one more token: the next record carries the gap size.
  site.tokens_millis.store(1000);
  obs::log_write(site, obs::LogLevel::kWarn, "obs.test.flood", {{"i", 5}});
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[2].find("\"suppressed\":3"), std::string::npos);
  EXPECT_TRUE(JsonChecker(lines[2]).valid()) << lines[2];
}

TEST_F(ObsTest, ParseLogLevelAcceptsNamesAndDigits) {
  obs::LogLevel lvl = obs::LogLevel::kOff;
  EXPECT_TRUE(obs::parse_log_level("debug", &lvl));
  EXPECT_EQ(lvl, obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::parse_log_level("3", &lvl));
  EXPECT_EQ(lvl, obs::LogLevel::kError);
  EXPECT_FALSE(obs::parse_log_level("loud", &lvl));
  EXPECT_EQ(lvl, obs::LogLevel::kError);  // unchanged on failure
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST_F(ObsTest, FlightRingWrapsOldestFirstAndDumpJsonNamesVictim) {
  auto& fr = obs::FlightRecorder::instance();
  fr.set_capacity(4);
  for (int i = 0; i < 6; ++i) {
    fr.record("info", "obs.test.flight", static_cast<std::uint64_t>(i), 0,
              "detail with \"quotes\"");
  }
  const std::vector<obs::FlightEvent> events = fr.events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].request_id,
              static_cast<std::uint64_t>(i + 2));  // 0 and 1 overwritten
  }
  std::ostringstream out;
  fr.write_json(out, "watchdog_kill", 4812);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"reason\":\"watchdog_kill\""), std::string::npos);
  EXPECT_NE(json.find("\"victim_request_id\":4812"), std::string::npos);
  EXPECT_NE(json.find("\"obs.test.flight\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
  fr.set_capacity(256);  // restore the default
}

TEST_F(ObsTest, FlightEventFieldsTruncateInsteadOfOverflowing) {
  auto& fr = obs::FlightRecorder::instance();
  fr.clear();
  const std::string long_detail(500, 'x');
  fr.record("warning-too-long", std::string(200, 'e').c_str(), 1, 2, long_detail);
  const std::vector<obs::FlightEvent> events = fr.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LT(std::string_view(events[0].level).size(), sizeof(events[0].level));
  EXPECT_LT(std::string_view(events[0].event).size(), sizeof(events[0].event));
  EXPECT_LT(std::string_view(events[0].detail).size(), sizeof(events[0].detail));
  fr.clear();
}

TEST_F(ObsTest, FlightDumpIsGatedOnADirectory) {
  auto& fr = obs::FlightRecorder::instance();
  // Unless TSG_FLIGHT_DIR leaked into the test environment, dumping is off
  // and dump() declines without touching the filesystem.
  if (!fr.enabled()) {
    EXPECT_EQ(fr.dump("unit_test"), "");
  }
}

// ---------------------------------------------------------------------------
// SLO monitor + Prometheus exposition
// ---------------------------------------------------------------------------

TEST_F(ObsTest, HistogramQuantileInterpolatesWithinBuckets) {
  obs::MetricsSnapshot::Hist hist;
  hist.bounds = {10, 20};
  hist.counts = {10, 10, 0};  // 10 in (0,10], 10 in (10,20], overflow empty
  hist.count = 20;
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(hist, 0.25), 5.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(hist, 0.75), 15.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(hist, 1.0), 20.0);
  // Mass in the unbounded overflow bucket floors at the last finite bound.
  hist.counts = {0, 0, 5};
  hist.count = 5;
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(hist, 0.99), 20.0);
  // Empty histogram: no estimate.
  hist.counts.clear();
  hist.count = 0;
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(hist, 0.5), 0.0);
}

TEST_F(ObsTest, SloMonitorWindowsTheRegistryAndBurnsOnViolation) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Histogram& lat = reg.histogram("obs.test.slo.lat_us", {1000, 10000, 100000});
  obs::Counter& done = reg.counter("obs.test.slo.done");
  obs::Counter& fail = reg.counter("obs.test.slo.fail");

  obs::SloConfig cfg;
  cfg.target_p99_ms = 1.0;       // 1 ms — the 50 ms observations must violate
  cfg.max_error_rate = 0.25;
  obs::SloMonitor monitor(cfg, "obs.test.slo.lat_us", "obs.test.slo.done",
                          "obs.test.slo.fail");
  const std::int64_t burn_before =
      reg.snapshot().counter("slo.p99_burn");

  for (int i = 0; i < 4; ++i) lat.observe(50000);  // 50 ms in µs
  done.add(2);
  fail.add(2);  // error rate 0.5 > 0.25

  const obs::SloMonitor::Report report = monitor.observe();
  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.failed, 2);
  EXPECT_DOUBLE_EQ(report.error_rate, 0.5);
  EXPECT_GT(report.p99_ms, 1.0);
  EXPECT_TRUE(report.p99_violated);
  EXPECT_TRUE(report.error_violated);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(reg.snapshot().counter("slo.p99_burn"), burn_before + 1);

  // A quiet follow-up window has nothing to violate.
  const obs::SloMonitor::Report quiet = monitor.observe();
  EXPECT_EQ(quiet.completed, 0);
  EXPECT_TRUE(quiet.ok());
}

TEST_F(ObsTest, PrometheusExpositionShapesCountersGaugesAndHistograms) {
  obs::MetricsSnapshot snap;
  snap.counters.emplace_back("obs.test.prom.counter", 7);
  snap.gauges.emplace_back("obs.test.prom.gauge", -3);
  obs::MetricsSnapshot::Hist hist;
  hist.name = "obs.test.prom.hist";
  hist.bounds = {10, 100};
  hist.counts = {1, 2, 3};
  hist.count = 6;
  hist.sum = 400;
  snap.histograms.push_back(hist);

  std::ostringstream out;
  obs::write_prometheus(out, snap);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE tsg_obs_test_prom_counter counter\n"
                      "tsg_obs_test_prom_counter 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("tsg_obs_test_prom_gauge -3\n"), std::string::npos);
  // Buckets are cumulative and close with +Inf at the total count.
  EXPECT_NE(text.find("tsg_obs_test_prom_hist_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tsg_obs_test_prom_hist_bucket{le=\"100\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("tsg_obs_test_prom_hist_bucket{le=\"+Inf\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("tsg_obs_test_prom_hist_sum 400\n"), std::string::npos);
  EXPECT_NE(text.find("tsg_obs_test_prom_hist_count 6\n"), std::string::npos);
}

TEST_F(ObsTest, MemoryGaugesAreRegistered) {
  // MemoryTracker::instance() registers its gauges on first use; touching it
  // here guarantees the registration ran in this process.
  (void)MemoryTracker::instance().current();
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "memory.peak_bytes") {
      found = true;
      EXPECT_GE(value, 0);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
