// Observability subsystem (src/obs): trace ring buffers, Chrome trace JSON,
// the metrics registry, snapshot deltas, and the runtime gates. Registered
// with the `obs` ctest label; scripts/check.sh runs it under ASan/UBSan with
// tracing enabled to prove the concurrent emit path is clean.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/memory.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace tsg;

// Minimal recursive-descent JSON syntax checker — enough to prove the trace
// and metrics emitters produce well-formed documents without pulling in a
// JSON dependency the container does not have.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

/// Every test starts from a quiet collector and disabled gates, and leaves
/// the process the same way (the binary shares one singleton).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TraceCollector::instance().set_enabled(false);
    obs::TraceCollector::instance().clear();
    obs::set_metrics_detail_enabled(false);
  }
  void TearDown() override {
    obs::TraceCollector::instance().set_enabled(false);
    obs::TraceCollector::instance().clear();
    obs::set_metrics_detail_enabled(false);
  }
};

TEST_F(ObsTest, DisabledGateRecordsNothing) {
  ASSERT_FALSE(obs::trace_enabled());
  {
    TSG_TRACE_SPAN("obs.test.off");
    TSG_TRACE_INSTANT("obs.test.off.instant", 3);
  }
  const auto events = obs::TraceCollector::instance().drain();
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(obs::TraceCollector::instance().dropped(), 0u);
}

TEST_F(ObsTest, SpanAndInstantRoundTrip) {
  auto& tc = obs::TraceCollector::instance();
  tc.set_enabled(true);
  {
    TSG_TRACE_SPAN("obs.test.span", 42);
    TSG_TRACE_INSTANT("obs.test.instant", 7);
  }
  tc.set_enabled(false);
  const auto events = tc.drain();
  ASSERT_EQ(events.size(), 2u);
  const obs::TraceEvent* span = nullptr;
  const obs::TraceEvent* instant = nullptr;
  for (const auto& e : events) {
    if (std::string_view(e.name) == "obs.test.span") span = &e;
    if (std::string_view(e.name) == "obs.test.instant") instant = &e;
  }
  ASSERT_NE(span, nullptr);
  ASSERT_NE(instant, nullptr);
  EXPECT_EQ(span->phase, 'X');
  EXPECT_EQ(span->arg, 42);
  EXPECT_GE(span->dur_us, 0.0);
  EXPECT_EQ(instant->phase, 'i');
  EXPECT_EQ(instant->arg, 7);
  EXPECT_DOUBLE_EQ(instant->dur_us, 0.0);
  // The instant fires inside the span: its timestamp is within the span.
  EXPECT_GE(instant->ts_us, span->ts_us);
  EXPECT_LE(instant->ts_us, span->ts_us + span->dur_us);
}

TEST_F(ObsTest, BeginEndSpansRecordPairedPhases) {
  auto& tc = obs::TraceCollector::instance();
  tc.set_enabled(true);
  TSG_TRACE_BEGIN("obs.test.be", 5);
  TSG_TRACE_INSTANT("obs.test.between");
  TSG_TRACE_END("obs.test.be");
  tc.set_enabled(false);
  const auto events = tc.drain();
  ASSERT_EQ(events.size(), 3u);
  const obs::TraceEvent* begin = nullptr;
  const obs::TraceEvent* end = nullptr;
  for (const auto& e : events) {
    if (std::string_view(e.name) != "obs.test.be") continue;
    if (e.phase == 'B') begin = &e;
    if (e.phase == 'E') end = &e;
  }
  ASSERT_NE(begin, nullptr);
  ASSERT_NE(end, nullptr);
  EXPECT_EQ(begin->arg, 5);
  EXPECT_LE(begin->ts_us, end->ts_us);
  // Unlike TSG_TRACE_SPAN's scoped 'X' event, B/E carry no duration of
  // their own: the viewer derives it from the pair.
  EXPECT_DOUBLE_EQ(begin->dur_us, 0.0);
  EXPECT_DOUBLE_EQ(end->dur_us, 0.0);
}

TEST_F(ObsTest, RingWraparoundKeepsNewestAndCountsDropped) {
  auto& tc = obs::TraceCollector::instance();
  tc.set_ring_capacity(16);
  tc.set_enabled(true);
  for (int i = 0; i < 40; ++i) {
    obs::trace_instant("obs.test.wrap", i);
  }
  tc.set_enabled(false);
  const auto events = tc.drain();
  ASSERT_EQ(events.size(), 16u);
  // Oldest events are overwritten; the survivors are the newest 16, in order.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].arg, 24 + i);
  }
  EXPECT_EQ(tc.dropped(), 24u);
  tc.clear();
  EXPECT_EQ(tc.dropped(), 0u);
  tc.set_ring_capacity(std::size_t{1} << 15);  // restore the default
}

TEST_F(ObsTest, ConcurrentEmittersFromParallelFor) {
  auto& tc = obs::TraceCollector::instance();
  tc.set_enabled(true);
  constexpr int kTasks = 512;
  parallel_for(0, kTasks, [](int i) { obs::trace_instant("obs.test.parallel", i); });
  tc.set_enabled(false);
  const auto events = tc.drain();
  std::vector<bool> seen(kTasks, false);
  for (const auto& e : events) {
    ASSERT_STREQ(e.name, "obs.test.parallel");
    ASSERT_GE(e.arg, 0);
    ASSERT_LT(e.arg, kTasks);
    EXPECT_FALSE(seen[static_cast<std::size_t>(e.arg)]);
    seen[static_cast<std::size_t>(e.arg)] = true;
  }
  // Every iteration emitted exactly once, across however many threads ran.
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kTasks));
  // Drain output is globally time-ordered.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
  EXPECT_EQ(tc.dropped(), 0u);
}

TEST_F(ObsTest, ChromeTraceJsonIsWellFormed) {
  auto& tc = obs::TraceCollector::instance();
  tc.set_enabled(true);
  {
    TSG_TRACE_SPAN("obs.test.json", 5);
    TSG_TRACE_INSTANT("obs.test.json.instant");
  }
  tc.set_enabled(false);
  std::ostringstream out;
  tc.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"obs.test.json\""), std::string::npos);
  EXPECT_NE(json.find("\"obs.test.json.instant\""), std::string::npos);
  // write_chrome_trace drains: a second dump has no events left.
  EXPECT_TRUE(tc.drain().empty());
}

TEST_F(ObsTest, CounterAndHistogramSemantics) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& c = reg.counter("obs.test.counter");
  const std::int64_t base = c.value();
  c.inc();
  c.add(9);
  EXPECT_EQ(c.value(), base + 10);
  // Same name returns the same instrument (stable reference).
  EXPECT_EQ(&reg.counter("obs.test.counter"), &c);

  obs::Histogram& h = reg.histogram("obs.test.hist", {0, 4, 16});
  h.reset();
  h.observe(-1);  // <= 0 -> bucket 0
  h.observe(0);   // inclusive upper bound -> bucket 0
  h.observe(4);   // inclusive upper bound -> bucket 1
  h.observe(5);   // -> bucket 2
  h.observe(99);  // -> overflow bucket
  const std::vector<std::int64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), -1 + 0 + 4 + 5 + 99);
  // Bounds apply on creation only; a mismatched re-request returns the
  // original instrument.
  EXPECT_EQ(&reg.histogram("obs.test.hist", {1, 2}), &h);
  EXPECT_EQ(h.bounds(), (std::vector<std::int64_t>{0, 4, 16}));
}

TEST_F(ObsTest, SnapshotDeltaAndGauges) {
  auto& reg = obs::MetricsRegistry::instance();
  static std::int64_t gauge_value = 17;
  reg.register_gauge("obs.test.gauge", [] { return gauge_value; });

  obs::Counter& c = reg.counter("obs.test.delta.counter");
  obs::Histogram& h = reg.histogram("obs.test.delta.hist", {10, 100});
  const obs::MetricsSnapshot before = reg.snapshot();

  c.add(5);
  h.observe(50);
  reg.counter("obs.test.delta.fresh").add(3);  // absent from `before`
  gauge_value = 23;

  const obs::MetricsSnapshot after = reg.snapshot();
  const obs::MetricsSnapshot d = obs::MetricsSnapshot::delta(before, after);

  EXPECT_EQ(d.counter("obs.test.delta.counter"), 5);
  EXPECT_EQ(d.counter("obs.test.delta.fresh"), 3);  // counts from zero
  EXPECT_EQ(d.counter("obs.test.absent"), 0);
  EXPECT_EQ(d.gauge("obs.test.gauge"), 23);  // gauges keep the after-value

  const obs::MetricsSnapshot::Hist* hd = d.histogram("obs.test.delta.hist");
  ASSERT_NE(hd, nullptr);
  EXPECT_EQ(hd->count, 1);
  EXPECT_EQ(hd->sum, 50);
  ASSERT_EQ(hd->counts.size(), 3u);
  EXPECT_EQ(hd->counts[1], 1);  // 50 lands in (10, 100]
}

TEST_F(ObsTest, RegistryJsonIsWellFormed) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("obs.test.json.counter").add(2);
  reg.histogram("obs.test.json.hist", {1, 2, 3}).observe(2);
  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"obs.test.json.counter\""), std::string::npos);
}

TEST_F(ObsTest, ParallelForCountersAndDetailGate) {
  auto& reg = obs::MetricsRegistry::instance();

  // Detail gate off: the always-on call/task counters move, the imbalance
  // histogram does not.
  const obs::MetricsSnapshot before_off = reg.snapshot();
  parallel_for(0, 100, [](int) {});
  const obs::MetricsSnapshot d_off =
      obs::MetricsSnapshot::delta(before_off, reg.snapshot());
  EXPECT_EQ(d_off.counter("parallel_for.calls"), 1);
  EXPECT_EQ(d_off.counter("parallel_for.tasks"), 100);
  if (const auto* h = d_off.histogram("parallel_for.imbalance_pct")) {
    EXPECT_EQ(h->count, 0);
  }

  // Detail gate on: one imbalance observation per parallel_for call.
  obs::set_metrics_detail_enabled(true);
  const obs::MetricsSnapshot before_on = reg.snapshot();
  parallel_for(0, 100, [](int) {});
  obs::set_metrics_detail_enabled(false);
  const obs::MetricsSnapshot d_on =
      obs::MetricsSnapshot::delta(before_on, reg.snapshot());
  EXPECT_EQ(d_on.counter("parallel_for.calls"), 1);
  const obs::MetricsSnapshot::Hist* h = d_on.histogram("parallel_for.imbalance_pct");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1);
}

TEST_F(ObsTest, MemoryGaugesAreRegistered) {
  // MemoryTracker::instance() registers its gauges on first use; touching it
  // here guarantees the registration ran in this process.
  (void)MemoryTracker::instance().current();
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "memory.peak_bytes") {
      found = true;
      EXPECT_GE(value, 0);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
