// Element-level operations (add, hadamard, masks, normalisation) and the
// comparison utility itself.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/reference.h"
#include "gen/generators.h"
#include "matrix/compare.h"
#include "matrix/convert.h"
#include "matrix/ops.h"
#include "test_support.h"

namespace tsg {
namespace {

TEST(Ops, IdentityAndDiagonal) {
  const Csr<double> i = identity<double>(5);
  EXPECT_EQ(i.nnz(), 5);
  for (index_t r = 0; r < 5; ++r) {
    EXPECT_EQ(i.col_idx[r], r);
    EXPECT_DOUBLE_EQ(i.val[r], 1.0);
  }
  tracked_vector<double> d = {1.0, -2.0, 0.0, 4.0};
  const Csr<double> dm = diagonal(d);
  EXPECT_EQ(dm.nnz(), 4);
  EXPECT_DOUBLE_EQ(dm.val[1], -2.0);
  EXPECT_DOUBLE_EQ(dm.val[2], 0.0);  // explicit zero kept
}

TEST(Ops, PermutationReordersRows) {
  tracked_vector<index_t> perm = {2, 0, 1};
  const Csr<double> p = permutation<double>(perm);
  const Csr<double> a = gen::erdos_renyi(3, 3, 6, 5);
  const Csr<double> pa = spgemm_reference(p, a);
  for (index_t i = 0; i < 3; ++i) {
    ASSERT_EQ(pa.row_nnz(i), a.row_nnz(perm[i]));
    for (offset_t k = 0; k < pa.row_nnz(i); ++k) {
      EXPECT_EQ(pa.col_idx[pa.row_ptr[i] + k], a.col_idx[a.row_ptr[perm[i]] + k]);
    }
  }
  tracked_vector<index_t> bad = {0, 0, 5};
  EXPECT_THROW(permutation<double>(bad), std::invalid_argument);
}

TEST(Ops, AddIsUnionWithSums) {
  const Csr<double> a = gen::erdos_renyi(40, 40, 200, 6);
  const Csr<double> b = gen::erdos_renyi(40, 40, 220, 7);
  const Csr<double> c = add(a, b);
  EXPECT_TRUE(c.validate().empty());
  EXPECT_TRUE(c.rows_sorted());
  EXPECT_GE(c.nnz(), std::max(a.nnz(), b.nnz()));
  EXPECT_LE(c.nnz(), a.nnz() + b.nnz());
  EXPECT_NEAR(value_sum(c), value_sum(a) + value_sum(b), 1e-9);
}

TEST(Ops, AddWithCoefficients) {
  const Csr<double> a = gen::banded(30, 2, 8);
  const Csr<double> c = add(a, a, 2.0, -2.0);  // 2A - 2A = 0 values, same pattern
  EXPECT_EQ(c.nnz(), a.nnz());
  for (double v : c.val) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Ops, HadamardIsIntersection) {
  const Csr<double> a = gen::erdos_renyi(50, 50, 400, 9);
  const Csr<double> b = gen::erdos_renyi(50, 50, 400, 10);
  const Csr<double> h = hadamard(a, b);
  EXPECT_LE(h.nnz(), std::min(a.nnz(), b.nnz()));
  // Every surviving entry is a product of matching entries.
  const Csr<double> haa = hadamard(a, a);
  EXPECT_EQ(haa.nnz(), a.nnz());
  for (std::size_t k = 0; k < haa.val.size(); ++k) {
    EXPECT_DOUBLE_EQ(haa.val[k], a.val[k] * a.val[k]);
  }
}

TEST(Ops, StructuralMaskKeepsValuesOfA) {
  const Csr<double> a = gen::erdos_renyi(30, 30, 300, 11);
  const Csr<double> m = gen::erdos_renyi(30, 30, 150, 12);
  const Csr<double> r = structural_mask(a, m);
  // r's pattern is a subset of both, values from a.
  const Csr<double> h = hadamard(a, m);
  EXPECT_EQ(r.nnz(), h.nnz());
  for (std::size_t k = 0; k < r.col_idx.size(); ++k) {
    EXPECT_EQ(r.col_idx[k], h.col_idx[k]);
  }
}

TEST(Ops, ScaleAndPow) {
  Csr<double> a = gen::banded(20, 1, 13);
  const double sum_before = value_sum(a);
  scale_inplace(a, 3.0);
  EXPECT_NEAR(value_sum(a), 3.0 * sum_before, 1e-9);
  Csr<double> b = gen::banded(20, 1, 14);
  pow_inplace(b, 2.0);
  for (double v : b.val) EXPECT_GE(v, 0.0);
}

TEST(Ops, NormalizeColumnsMakesStochastic) {
  Csr<double> a = gen::erdos_renyi(60, 60, 500, 15);
  normalize_columns_inplace(a);
  tracked_vector<double> col_sum(60, 0.0);
  for (std::size_t k = 0; k < a.col_idx.size(); ++k) {
    col_sum[static_cast<std::size_t>(a.col_idx[k])] += a.val[k];
  }
  for (index_t j = 0; j < 60; ++j) {
    if (col_sum[static_cast<std::size_t>(j)] != 0.0) {
      EXPECT_NEAR(col_sum[static_cast<std::size_t>(j)], 1.0, 1e-12);
    }
  }
}

TEST(Ops, PruneDropsSmallEntries) {
  Coo<double> coo;
  coo.rows = coo.cols = 3;
  coo.push_back(0, 0, 1.0);
  coo.push_back(0, 1, 1e-12);
  coo.push_back(1, 1, -1e-12);
  coo.push_back(2, 2, -3.0);
  const Csr<double> a = coo_to_csr(std::move(coo));
  const Csr<double> p = prune(a, 1e-9);
  EXPECT_EQ(p.nnz(), 2);
  EXPECT_TRUE(p.validate().empty());
}

TEST(Ops, TrilStrict) {
  const Csr<double> a = gen::symmetrized(gen::erdos_renyi(40, 40, 200, 16));
  const Csr<double> l = tril_strict(a);
  for (index_t i = 0; i < l.rows; ++i) {
    for (offset_t k = l.row_ptr[i]; k < l.row_ptr[i + 1]; ++k) {
      ASSERT_LT(l.col_idx[k], i);
    }
  }
}

TEST(Compare, DetectsStructureAndValueDiffs) {
  const Csr<double> a = gen::erdos_renyi(20, 20, 80, 17);
  Csr<double> b = a;
  EXPECT_TRUE(compare(a, b).equal);
  b.val[0] += 1.0;
  EXPECT_FALSE(compare(a, b).equal);
  b = a;
  b.col_idx[0] = (b.col_idx[0] + 1) % 20;
  EXPECT_FALSE(compare(a, b).equal);

  const Csr<double> wrong_shape(20, 21);
  EXPECT_FALSE(compare(a, wrong_shape).equal);
}

TEST(Compare, PruneZerosModeIgnoresExplicitZeros) {
  Coo<double> c1, c2;
  c1.rows = c1.cols = c2.rows = c2.cols = 2;
  c1.push_back(0, 0, 1.0);
  c1.push_back(0, 1, 0.0);  // explicit zero only in c1
  c2.push_back(0, 0, 1.0);
  const Csr<double> a = coo_to_csr(std::move(c1));
  const Csr<double> b = coo_to_csr(std::move(c2));
  EXPECT_FALSE(compare(a, b).equal);
  CompareOptions opt;
  opt.prune_zeros = true;
  EXPECT_TRUE(compare(a, b, opt).equal);
}

}  // namespace
}  // namespace tsg
