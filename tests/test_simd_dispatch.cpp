// Selection and bit-identity contracts for the runtime SIMD dispatch family
// (core/simd_dispatch.h): TSG_SIMD-style level parsing, CPUID clamping, the
// per-primitive A/B of every available level against the scalar oracle, and
// whole-pipeline memcmp identity when a level (or a fusion bin cap) is
// forced through the context Config. "Bit-identical" is the family's core
// promise — the vector kernels reorder reads, never accumulation.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/bitops.h"
#include "common/random.h"
#include "core/simd_dispatch.h"
#include "core/spgemm_context.h"
#include "core/tile_convert.h"
#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "test_support.h"

namespace tsg {
namespace {

std::vector<simd::Level> available_levels() {
  std::vector<simd::Level> out;
  for (int l = 0; l < simd::kLevelCount; ++l) {
    if (simd::level_available(static_cast<simd::Level>(l))) {
      out.push_back(static_cast<simd::Level>(l));
    }
  }
  return out;
}

// ------------------------------------------------------- level selection --

TEST(SimdSelect, ParseAcceptsEveryLevelName) {
  for (int l = 0; l < simd::kLevelCount; ++l) {
    const auto level = static_cast<simd::Level>(l);
    const Expected<simd::Level> parsed = simd::parse_level(simd::level_name(level));
    ASSERT_TRUE(parsed.ok()) << simd::level_name(level);
    EXPECT_EQ(*parsed, level);
  }
}

TEST(SimdSelect, ParseRejectsUnknownNamesWithStructuredStatus) {
  for (const char* bad : {"", "AVX2", "sse", "avx-512", "scalar "}) {
    const Expected<simd::Level> parsed = simd::parse_level(bad);
    ASSERT_FALSE(parsed.ok()) << "'" << bad << "'";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    // The message must name the accepted values — it surfaces in the
    // TSG_SIMD warning event and has to be actionable on its own.
    EXPECT_NE(parsed.status().message().find("scalar"), std::string::npos);
  }
}

TEST(SimdSelect, ScalarAndSwarAlwaysAvailable) {
  EXPECT_TRUE(simd::level_available(simd::Level::kScalar));
  EXPECT_TRUE(simd::level_available(simd::Level::kSwar));
  EXPECT_GE(simd::detected_level(), simd::Level::kSwar);
  EXPECT_TRUE(simd::level_available(simd::active_level()));
}

TEST(SimdSelect, ClampIsMonotoneAndLandsOnAvailable) {
  for (int l = 0; l < simd::kLevelCount; ++l) {
    const auto req = static_cast<simd::Level>(l);
    const simd::Level got = simd::clamp_to_available(req);
    EXPECT_LE(got, req);
    EXPECT_TRUE(simd::level_available(got));
    if (simd::level_available(req)) {
      EXPECT_EQ(got, req);
    }
  }
}

TEST(SimdSelect, CompileProbesGateAvxAvailability) {
  if (!simd::compiled_avx2()) {
    EXPECT_FALSE(simd::level_available(simd::Level::kAvx2));
  }
  if (!simd::compiled_avx512()) {
    EXPECT_FALSE(simd::level_available(simd::Level::kAvx512));
  }
}

// -------------------------------------------------- per-primitive vs oracle --

/// Random 16-row tile mask with a controllable density character: mixes
/// empty rows, dense rows, and single-bit rows so the compress/materialize
/// kernels see their edge lanes.
void random_masks(Xoshiro256& rng, rowmask_t m[kTileDim]) {
  for (int r = 0; r < kTileDim; ++r) {
    switch (rng.next_below(4)) {
      case 0: m[r] = 0; break;
      case 1: m[r] = static_cast<rowmask_t>(rng.next()); break;
      case 2: m[r] = 0xFFFF; break;
      default: m[r] = bit_of(static_cast<index_t>(rng.next_below(kTileDim))); break;
    }
  }
}

TEST(SimdPrimitives, MaskOrMatchesScalarOracle) {
  const simd::SymbolicOps& oracle = simd::symbolic_ops(simd::Level::kScalar);
  Xoshiro256 rng(0xA50);
  for (int trial = 0; trial < 200; ++trial) {
    alignas(32) rowmask_t mask_a[kTileDim];
    alignas(32) rowmask_t mask_b[kTileDim];
    random_masks(rng, mask_a);
    random_masks(rng, mask_b);
    std::uint64_t seed_cm[kTileMaskWords] = {rng.next(), rng.next(), rng.next(),
                                             rng.next()};
    std::uint64_t want[kTileMaskWords];
    std::memcpy(want, seed_cm, sizeof(want));
    oracle.mask_or(mask_a, mask_b, want);
    for (const simd::Level level : available_levels()) {
      std::uint64_t got[kTileMaskWords];
      std::memcpy(got, seed_cm, sizeof(got));
      simd::symbolic_ops(level).mask_or(mask_a, mask_b, got);
      ASSERT_EQ(std::memcmp(got, want, sizeof(want)), 0)
          << simd::level_name(level) << " trial " << trial;
    }
  }
}

TEST(SimdPrimitives, DeriveMatchesScalarOracle) {
  const simd::SymbolicOps& oracle = simd::symbolic_ops(simd::Level::kScalar);
  Xoshiro256 rng(0xA51);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint64_t cm[kTileMaskWords] = {rng.next(), rng.next(), rng.next(), rng.next()};
    if (trial == 0) std::memset(cm, 0, sizeof(cm));       // empty tile
    if (trial == 1) std::memset(cm, 0xFF, sizeof(cm));    // full tile (nnz 256)
    alignas(32) rowmask_t want_mask[kTileDim];
    std::uint8_t want_rp[kTileDim];
    const index_t want_nnz = oracle.derive(cm, want_mask, want_rp);
    for (const simd::Level level : available_levels()) {
      alignas(32) rowmask_t got_mask[kTileDim];
      std::uint8_t got_rp[kTileDim];
      const index_t got_nnz = simd::symbolic_ops(level).derive(cm, got_mask, got_rp);
      ASSERT_EQ(got_nnz, want_nnz) << simd::level_name(level) << " trial " << trial;
      ASSERT_EQ(std::memcmp(got_mask, want_mask, sizeof(want_mask)), 0)
          << simd::level_name(level) << " trial " << trial;
      ASSERT_EQ(std::memcmp(got_rp, want_rp, sizeof(want_rp)), 0)
          << simd::level_name(level) << " trial " << trial;
    }
  }
}

template <class T>
void check_compress_level() {
  const simd::NumericOps& oracle = simd::numeric_ops(simd::Level::kScalar);
  Xoshiro256 rng(sizeof(T) == 8 ? 0xA52 : 0xA53);
  for (int trial = 0; trial < 200; ++trial) {
    alignas(64) T acc[kTileNnzMax];
    for (T& v : acc) v = static_cast<T>(rng.next_double() * 2.0 - 1.0);
    alignas(32) rowmask_t mask_c[kTileDim];
    random_masks(rng, mask_c);
    if (trial == 0) std::memset(mask_c, 0xFF, sizeof(mask_c));
    int n = 0;
    for (int r = 0; r < kTileDim; ++r) n += popcount16(mask_c[r]);
    alignas(64) T want[kTileNnzMax];
    simd::compress_tile<T>(oracle, acc, mask_c, want);
    for (const simd::Level level : available_levels()) {
      // Compress may over-store past n (the contract allows whole-vector
      // stores into the thread-local scratch) — only [0, n) is compared.
      alignas(64) T got[kTileNnzMax];
      simd::compress_tile<T>(simd::numeric_ops(level), acc, mask_c, got);
      ASSERT_EQ(std::memcmp(got, want, static_cast<std::size_t>(n) * sizeof(T)), 0)
          << simd::level_name(level) << " trial " << trial << " n " << n;
    }
  }
}

TEST(SimdPrimitives, CompressDoubleMatchesScalarOracle) { check_compress_level<double>(); }

TEST(SimdPrimitives, CompressFloatMatchesScalarOracle) { check_compress_level<float>(); }

TEST(SimdPrimitives, MaterializeIsExactWidthAndMatchesOracle) {
  const simd::NumericOps& oracle = simd::numeric_ops(simd::Level::kScalar);
  Xoshiro256 rng(0xA54);
  for (int trial = 0; trial < 200; ++trial) {
    alignas(32) rowmask_t mask_c[kTileDim];
    random_masks(rng, mask_c);
    if (trial == 0) std::memset(mask_c, 0xFF, sizeof(mask_c));
    int n = 0;
    for (int r = 0; r < kTileDim; ++r) n += popcount16(mask_c[r]);
    std::uint8_t want_row[kTileNnzMax], want_col[kTileNnzMax];
    std::memset(want_row, 0xEE, sizeof(want_row));
    std::memset(want_col, 0xEE, sizeof(want_col));
    oracle.materialize(mask_c, want_row, want_col);
    for (const simd::Level level : available_levels()) {
      std::uint8_t got_row[kTileNnzMax], got_col[kTileNnzMax];
      std::memset(got_row, 0xEE, sizeof(got_row));
      std::memset(got_col, 0xEE, sizeof(got_col));
      simd::numeric_ops(level).materialize(mask_c, got_row, got_col);
      ASSERT_EQ(std::memcmp(got_row, want_row, sizeof(want_row)), 0)
          << simd::level_name(level) << " trial " << trial;
      ASSERT_EQ(std::memcmp(got_col, want_col, sizeof(want_col)), 0)
          << simd::level_name(level) << " trial " << trial;
      // Exact-store contract: materialize targets C's shared arrays, so the
      // sentinel bytes past n must be untouched at EVERY level.
      for (int k = n; k < static_cast<int>(kTileNnzMax); ++k) {
        ASSERT_EQ(got_row[k], 0xEE) << simd::level_name(level) << " over-store at " << k;
        ASSERT_EQ(got_col[k], 0xEE) << simd::level_name(level) << " over-store at " << k;
      }
    }
  }
}

// -------------------------------------------------- whole-pipeline identity --

template <class V>
void expect_bytes_equal(const tracked_vector<V>& x, const tracked_vector<V>& y,
                        const std::string& what) {
  ASSERT_EQ(x.size(), y.size()) << what << " size";
  if (!x.empty()) {
    EXPECT_EQ(std::memcmp(x.data(), y.data(), x.size() * sizeof(V)), 0) << what;
  }
}

template <class T>
void expect_tiles_identical(const TileMatrix<T>& x, const TileMatrix<T>& y,
                            const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(x.rows, y.rows);
  ASSERT_EQ(x.cols, y.cols);
  expect_bytes_equal(x.tile_ptr, y.tile_ptr, "tile_ptr");
  expect_bytes_equal(x.tile_col_idx, y.tile_col_idx, "tile_col_idx");
  expect_bytes_equal(x.tile_nnz, y.tile_nnz, "tile_nnz");
  expect_bytes_equal(x.row_ptr, y.row_ptr, "row_ptr");
  expect_bytes_equal(x.row_idx, y.row_idx, "row_idx");
  expect_bytes_equal(x.col_idx, y.col_idx, "col_idx");
  expect_bytes_equal(x.mask, y.mask, "mask");
  expect_bytes_equal(x.val, y.val, "val");
}

Csr<double> fuzz_matrix(std::uint64_t seed) {
  Xoshiro256 rng(seed * 6364136223846793005ull + 1442695040888963407ull);
  const index_t n = 16 + static_cast<index_t>(rng.next_below(280));
  switch (rng.next_below(5)) {
    case 0: return gen::erdos_renyi(n, n, static_cast<offset_t>(n) * 4, rng.next());
    case 1: return gen::dense_blocks(1 + n / 24, 16, rng.next());
    case 2: return gen::banded(n, 1 + static_cast<index_t>(rng.next_below(30)), rng.next());
    case 3: return gen::clustered_rows(n, 3, 8, rng.next());
    default: return gen::rmat(8, 6.0, rng.next());
  }
}

class ForcedLevelAb : public ::testing::TestWithParam<int> {};

TEST_P(ForcedLevelAb, EveryLevelMatchesScalarEndToEnd) {
  const TileMatrix<double> t =
      csr_to_tile(fuzz_matrix(static_cast<std::uint64_t>(GetParam()) + 7000));
  SpgemmContext scalar(SpgemmContext::Config{}.with_simd_level(simd::Level::kScalar));
  const TileMatrix<double> gold = scalar.run(t, t).c;
  for (const simd::Level level : available_levels()) {
    SpgemmContext forced(SpgemmContext::Config{}.with_simd_level(level));
    expect_tiles_identical(gold, forced.run(t, t).c,
                           std::string(simd::level_name(level)) + " seed " +
                               std::to_string(GetParam()));
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, ForcedLevelAb, ::testing::Range(0, 16));

TEST(ForcedLevelAb, FloatPipelineMatchesScalarEndToEnd) {
  const TileMatrix<float> t =
      csr_to_tile(gen::cast_values<float>(gen::dense_blocks(10, 16, 4212)));
  SpgemmContext scalar(SpgemmContext::Config{}.with_simd_level(simd::Level::kScalar));
  const TileMatrix<float> gold = scalar.run(t, t).c;
  for (const simd::Level level : available_levels()) {
    SpgemmContext forced(SpgemmContext::Config{}.with_simd_level(level));
    expect_tiles_identical(gold, forced.run(t, t).c, simd::level_name(level));
  }
}

// ------------------------------------------------------- fusion bin sweep --

class FusedBinAb : public ::testing::TestWithParam<int> {};

TEST_P(FusedBinAb, EveryBinCapMatchesUnfusedBitExact) {
  const TileMatrix<double> t =
      csr_to_tile(fuzz_matrix(static_cast<std::uint64_t>(GetParam()) + 8000));
  SpgemmContext unfused(SpgemmContext::Config{}.with_pair_cache(false));
  const TileMatrix<double> gold = unfused.run(t, t).c;
  offset_t prev_fused = 0;
  // -1 fuses nothing, kCostBins - 1 fuses every scheduled tile; the fused
  // tile count must grow monotonically with the cap while the result stays
  // byte-for-byte unchanged.
  for (const int cap : {-1, 0, 1, kCostBins - 1}) {
    SpgemmContext fused(SpgemmContext::Config{}.with_fused_path(true).with_fuse_max_bin(cap));
    const TileSpgemmResult<double> got = fused.run(t, t);
    expect_tiles_identical(gold, got.c,
                           "cap " + std::to_string(cap) + " seed " +
                               std::to_string(GetParam()));
    if (cap == -1) {
      EXPECT_EQ(got.timings.fused_tiles, 0) << "cap -1 must fuse nothing";
    } else {
      EXPECT_GE(got.timings.fused_tiles, prev_fused) << "cap " << cap;
    }
    prev_fused = got.timings.fused_tiles;
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, FusedBinAb, ::testing::Range(0, 12));

// ------------------------------------------------------------ observability --

TEST(SimdObservability, TimingsReportTheResolvedLevel) {
  const TileMatrix<double> t = csr_to_tile(gen::dense_blocks(4, 16, 11));
  for (const simd::Level level : available_levels()) {
    SpgemmContext ctx(SpgemmContext::Config{}.with_simd_level(level));
    EXPECT_EQ(ctx.run(t, t).timings.simd_level, static_cast<int>(level))
        << simd::level_name(level);
  }
  // Requests above what the host supports clamp, and the timings report the
  // level that actually ran, not the request.
  SpgemmContext top(SpgemmContext::Config{}.with_simd_level(simd::Level::kAvx512));
  EXPECT_EQ(top.run(t, t).timings.simd_level,
            static_cast<int>(simd::clamp_to_available(simd::Level::kAvx512)));
}

TEST(SimdObservability, ScalarSymbolicKernelPinsScalarLevel) {
  // The pre-SIMD scalar reference path (SymbolicKernel::kScalar) stays the
  // oracle: it must resolve to the scalar table no matter the simd option.
  TileSpgemmOptions options;
  options.symbolic = SymbolicKernel::kScalar;
  options.simd = simd::Level::kAvx512;
  const TileMatrix<double> t = csr_to_tile(gen::dense_blocks(4, 16, 12));
  SpgemmContext ctx(SpgemmContext::Config{}.with_options(options));
  EXPECT_EQ(ctx.run(t, t).timings.simd_level, static_cast<int>(simd::Level::kScalar));
}

}  // namespace
}  // namespace tsg
