// Bit-mask helpers: these carry the symbolic phase of the tile algorithm,
// so they are pinned down exhaustively.
#include <gtest/gtest.h>

#include "common/bitops.h"

namespace tsg {
namespace {

TEST(Bitops, Popcount16) {
  EXPECT_EQ(popcount16(0x0000), 0);
  EXPECT_EQ(popcount16(0xFFFF), 16);
  EXPECT_EQ(popcount16(0x0001), 1);
  EXPECT_EQ(popcount16(0x8000), 1);
  EXPECT_EQ(popcount16(0xAAAA), 8);
  EXPECT_EQ(popcount16(0b1110), 3);  // the paper's Fig. 5 example mask c10
}

TEST(Bitops, BitOfCoversAllColumns) {
  for (index_t c = 0; c < kTileDim; ++c) {
    EXPECT_EQ(popcount16(bit_of(c)), 1);
    EXPECT_EQ(mask_select(bit_of(c), 0), c);
  }
}

TEST(Bitops, BitsBelow) {
  EXPECT_EQ(bits_below(0), 0x0000);
  EXPECT_EQ(bits_below(1), 0x0001);
  EXPECT_EQ(bits_below(4), 0x000F);
  EXPECT_EQ(bits_below(15), 0x7FFF);
}

TEST(Bitops, MaskRankIsPositionAmongSetBits) {
  const rowmask_t m = 0b0010'1101;  // bits 0,2,3,5
  EXPECT_EQ(mask_rank(m, 0), 0);
  EXPECT_EQ(mask_rank(m, 2), 1);
  EXPECT_EQ(mask_rank(m, 3), 2);
  EXPECT_EQ(mask_rank(m, 5), 3);
}

TEST(Bitops, RankSelectRoundTrip) {
  // For every mask in a pseudo-random sample and every set bit:
  // select(rank(bit)) == bit.
  for (unsigned m = 1; m < 0x10000; m = m * 3 + 7) {
    const rowmask_t mask = static_cast<rowmask_t>(m & 0xFFFF);
    const int n = popcount16(mask);
    for (int k = 0; k < n; ++k) {
      const index_t col = mask_select(mask, k);
      EXPECT_EQ(mask_rank(mask, col), k) << "mask=" << mask;
    }
  }
}

TEST(Bitops, NibblePackRoundTrip) {
  for (index_t r = 0; r < kTileDim; ++r) {
    for (index_t c = 0; c < kTileDim; ++c) {
      const std::uint8_t packed = pack_nibbles(r, c);
      EXPECT_EQ(unpack_row(packed), r);
      EXPECT_EQ(unpack_col(packed), c);
    }
  }
}

// --- Word-packed tile-mask helpers (the step-2 packed symbolic kernel) ---

TEST(Bitops, RowmaskWordPackRoundTrip) {
  const rowmask_t rows[kRowsPerMaskWord] = {0x0001, 0xBEEF, 0x0000, 0x8000};
  const std::uint64_t w = pack_rowmask_word(rows);
  for (int j = 0; j < kRowsPerMaskWord; ++j) {
    EXPECT_EQ(unpack_rowmask(w, j), rows[j]) << "lane " << j;
  }
}

TEST(Bitops, LanePopcountsMatchPerRowPopcount) {
  // Each 16-bit lane of the SWAR popcount must equal popcount16 of that
  // lane, over a pseudo-random word sample.
  std::uint64_t w = 0x0123456789ABCDEFull;
  for (int iter = 0; iter < 1000; ++iter) {
    const std::uint64_t counts = lane_popcounts16(w);
    for (int j = 0; j < kRowsPerMaskWord; ++j) {
      const auto lane = static_cast<rowmask_t>(w >> (16 * j));
      EXPECT_EQ(static_cast<int>((counts >> (16 * j)) & 0xFFFF), popcount16(lane));
    }
    w = w * 6364136223846793005ull + 1442695040888963407ull;
  }
}

TEST(Bitops, LanePrefixSumsAreInclusive) {
  // lanes (1, 2, 3, 4) -> inclusive prefix (1, 3, 6, 10); the kernel shifts
  // by 16 to read them as exclusive offsets.
  const std::uint64_t w = 0x0004'0003'0002'0001ull;
  const std::uint64_t p = lane_prefix_sums16(w);
  EXPECT_EQ((p >> 0) & 0xFFFF, 1u);
  EXPECT_EQ((p >> 16) & 0xFFFF, 3u);
  EXPECT_EQ((p >> 32) & 0xFFFF, 6u);
  EXPECT_EQ((p >> 48) & 0xFFFF, 10u);
}

TEST(Bitops, TilemaskPopcountSumsAllRows) {
  rowmask_t mask[kTileDim];
  int expected = 0;
  for (index_t r = 0; r < kTileDim; ++r) {
    mask[r] = static_cast<rowmask_t>((0x9E37u * (r + 3)) & 0xFFFF);
    expected += popcount16(mask[r]);
  }
  std::uint64_t words[kTileMaskWords];
  for (int wi = 0; wi < kTileMaskWords; ++wi) {
    words[wi] = pack_rowmask_word(mask + wi * kRowsPerMaskWord);
  }
  EXPECT_EQ(tilemask_popcount(words), expected);
}

TEST(Bitops, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 16), 0);
  EXPECT_EQ(ceil_div(1, 16), 1);
  EXPECT_EQ(ceil_div(16, 16), 1);
  EXPECT_EQ(ceil_div(17, 16), 2);
  EXPECT_EQ(ceil_div(255, 16), 16);
  EXPECT_EQ(ceil_div(256, 16), 16);
}

}  // namespace
}  // namespace tsg
