// Bit-mask helpers: these carry the symbolic phase of the tile algorithm,
// so they are pinned down exhaustively.
#include <gtest/gtest.h>

#include "common/bitops.h"

namespace tsg {
namespace {

TEST(Bitops, Popcount16) {
  EXPECT_EQ(popcount16(0x0000), 0);
  EXPECT_EQ(popcount16(0xFFFF), 16);
  EXPECT_EQ(popcount16(0x0001), 1);
  EXPECT_EQ(popcount16(0x8000), 1);
  EXPECT_EQ(popcount16(0xAAAA), 8);
  EXPECT_EQ(popcount16(0b1110), 3);  // the paper's Fig. 5 example mask c10
}

TEST(Bitops, BitOfCoversAllColumns) {
  for (index_t c = 0; c < kTileDim; ++c) {
    EXPECT_EQ(popcount16(bit_of(c)), 1);
    EXPECT_EQ(mask_select(bit_of(c), 0), c);
  }
}

TEST(Bitops, BitsBelow) {
  EXPECT_EQ(bits_below(0), 0x0000);
  EXPECT_EQ(bits_below(1), 0x0001);
  EXPECT_EQ(bits_below(4), 0x000F);
  EXPECT_EQ(bits_below(15), 0x7FFF);
}

TEST(Bitops, MaskRankIsPositionAmongSetBits) {
  const rowmask_t m = 0b0010'1101;  // bits 0,2,3,5
  EXPECT_EQ(mask_rank(m, 0), 0);
  EXPECT_EQ(mask_rank(m, 2), 1);
  EXPECT_EQ(mask_rank(m, 3), 2);
  EXPECT_EQ(mask_rank(m, 5), 3);
}

TEST(Bitops, RankSelectRoundTrip) {
  // For every mask in a pseudo-random sample and every set bit:
  // select(rank(bit)) == bit.
  for (unsigned m = 1; m < 0x10000; m = m * 3 + 7) {
    const rowmask_t mask = static_cast<rowmask_t>(m & 0xFFFF);
    const int n = popcount16(mask);
    for (int k = 0; k < n; ++k) {
      const index_t col = mask_select(mask, k);
      EXPECT_EQ(mask_rank(mask, col), k) << "mask=" << mask;
    }
  }
}

TEST(Bitops, NibblePackRoundTrip) {
  for (index_t r = 0; r < kTileDim; ++r) {
    for (index_t c = 0; c < kTileDim; ++c) {
      const std::uint8_t packed = pack_nibbles(r, c);
      EXPECT_EQ(unpack_row(packed), r);
      EXPECT_EQ(unpack_col(packed), c);
    }
  }
}

TEST(Bitops, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 16), 0);
  EXPECT_EQ(ceil_div(1, 16), 1);
  EXPECT_EQ(ceil_div(16, 16), 1);
  EXPECT_EQ(ceil_div(17, 16), 2);
  EXPECT_EQ(ceil_div(255, 16), 16);
  EXPECT_EQ(ceil_div(256, 16), 16);
}

}  // namespace
}  // namespace tsg
