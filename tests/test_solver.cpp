// AMG + CG solver stack built on the tiled kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/tile_convert.h"
#include "core/tile_spmv.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "matrix/spmv.h"
#include "solver/amg.h"
#include "solver/cg.h"

namespace tsg {
namespace {

using solver::AmgHierarchy;
using solver::AmgOptions;

/// The standard 5-point Poisson matrix (diag 4, neighbours -1): the real
/// ill-conditioned problem AMG exists for. (gen::stencil_5pt uses -0.5
/// off-diagonals, which is diagonally dominant and too easy for this test.)
Csr<double> poisson(index_t nx, index_t ny) {
  Coo<double> coo;
  coo.rows = coo.cols = nx * ny;
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t row = y * nx + x;
      coo.push_back(row, row, 4.0);
      if (x > 0) coo.push_back(row, row - 1, -1.0);
      if (x + 1 < nx) coo.push_back(row, row + 1, -1.0);
      if (y > 0) coo.push_back(row, row - nx, -1.0);
      if (y + 1 < ny) coo.push_back(row, row + nx, -1.0);
    }
  }
  return coo_to_csr(std::move(coo));
}

tracked_vector<double> random_rhs(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  tracked_vector<double> b(n);
  for (auto& v : b) v = rng.next_double() - 0.5;
  return b;
}

double residual_norm(const Csr<double>& a, const tracked_vector<double>& x,
                     const tracked_vector<double>& b) {
  tracked_vector<double> ax;
  spmv(a, x, ax);
  double s = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) s += (b[i] - ax[i]) * (b[i] - ax[i]);
  return std::sqrt(s);
}

TEST(Aggregate, CoversAllVerticesWithCompactIds) {
  const Csr<double> a = poisson(30, 30);
  const auto agg = solver::aggregate(a, 0.08);
  index_t max_id = -1;
  for (index_t id : agg) {
    ASSERT_GE(id, 0);
    max_id = std::max(max_id, id);
  }
  // Compact ids: every id in [0, max] appears.
  std::vector<int> seen(static_cast<std::size_t>(max_id) + 1, 0);
  for (index_t id : agg) seen[static_cast<std::size_t>(id)] = 1;
  for (int s : seen) EXPECT_EQ(s, 1);
  // Real coarsening.
  EXPECT_LT(max_id + 1, a.rows / 2);
}

TEST(Amg, HierarchyCoarsensGeometrically) {
  const Csr<double> a = poisson(40, 40);
  const AmgHierarchy h(a);
  ASSERT_GE(h.levels(), 2u);
  for (std::size_t l = 1; l < h.levels(); ++l) {
    EXPECT_LT(h.level(l).a.rows, h.level(l - 1).a.rows);
  }
  EXPECT_LE(h.level(h.levels() - 1).a.rows, 64 + 16);
  // Operator complexity stays modest for smoothed aggregation on Poisson.
  EXPECT_LT(h.operator_complexity(), 3.0);
}

TEST(Amg, VCycleReducesResidual) {
  const Csr<double> a = poisson(32, 32);
  const AmgHierarchy h(a);
  const auto b = random_rhs(static_cast<std::size_t>(a.rows), 1);
  tracked_vector<double> x(b.size(), 0.0);
  double prev = residual_norm(a, x, b);
  for (int cycle = 0; cycle < 5; ++cycle) {
    h.v_cycle(x, b);
    const double now = residual_norm(a, x, b);
    EXPECT_LT(now, prev * 0.9) << "cycle " << cycle;
    prev = now;
  }
}

TEST(Amg, SolveConvergesToTolerance) {
  const Csr<double> a = poisson(48, 48);
  const AmgHierarchy h(a);
  const auto b = random_rhs(static_cast<std::size_t>(a.rows), 2);
  tracked_vector<double> x(b.size(), 0.0);
  const int iters = h.solve(x, b, 1e-8, 60);
  ASSERT_GT(iters, 0) << "did not converge";
  double bn = 0;
  for (double v : b) bn += v * v;
  EXPECT_LE(residual_norm(a, x, b), 1e-8 * std::sqrt(bn) * 1.01);
}

TEST(Amg, PlainAggregationWorksAsCgPreconditioner) {
  // Unsmoothed aggregation is a weak standalone cycle (its convergence
  // factor degrades with problem size); its standard role is as a CG
  // preconditioner, where it must still beat plain CG comfortably.
  AmgOptions opt;
  opt.smooth_prolongator = false;
  const Csr<double> a = poisson(32, 32);
  const AmgHierarchy h(a, opt);
  const TileMatrix<double> t = csr_to_tile(a);
  const auto b = random_rhs(static_cast<std::size_t>(a.rows), 3);

  tracked_vector<double> x_plain, x_pre;
  const auto plain = solver::conjugate_gradient(t, b, x_plain,
                                                solver::identity_preconditioner(), 1e-8, 3000);
  const auto pre = solver::conjugate_gradient(t, b, x_pre, solver::amg_preconditioner(h),
                                              1e-8, 3000);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations * 2, plain.iterations)
      << "plain " << plain.iterations << " vs plain-agg amg " << pre.iterations;
}

TEST(Amg, CoarseOnlyProblemUsesDirectSolve) {
  // Matrix already at/below coarse_size: one level, LU only.
  const Csr<double> a = poisson(6, 6);  // n=36 < 64
  const AmgHierarchy h(a);
  EXPECT_EQ(h.levels(), 1u);
  const auto b = random_rhs(36, 4);
  tracked_vector<double> x(36, 0.0);
  EXPECT_EQ(h.solve(x, b, 1e-12, 3), 1);  // direct solve: 1 "iteration"
}

TEST(Cg, PlainCgSolvesPoisson) {
  const Csr<double> a = poisson(24, 24);
  const TileMatrix<double> t = csr_to_tile(a);
  const auto b = random_rhs(static_cast<std::size_t>(a.rows), 5);
  tracked_vector<double> x;
  const auto res = solver::conjugate_gradient(t, b, x, solver::identity_preconditioner(),
                                              1e-8, 2000);
  ASSERT_TRUE(res.converged);
  EXPECT_LE(residual_norm(a, x, b) / std::sqrt(static_cast<double>(b.size())), 1e-6);
}

TEST(Cg, AmgPreconditioningCutsIterations) {
  const Csr<double> a = poisson(48, 48);
  const TileMatrix<double> t = csr_to_tile(a);
  const auto b = random_rhs(static_cast<std::size_t>(a.rows), 6);

  tracked_vector<double> x_plain, x_amg;
  const auto plain = solver::conjugate_gradient(t, b, x_plain,
                                                solver::identity_preconditioner(), 1e-8, 3000);
  const AmgHierarchy h(a);
  const auto pre = solver::conjugate_gradient(t, b, x_amg, solver::amg_preconditioner(h),
                                              1e-8, 3000);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(pre.converged);
  // The entire point of the AMG preconditioner.
  EXPECT_LT(pre.iterations * 3, plain.iterations)
      << "plain " << plain.iterations << " vs amg " << pre.iterations;
}

TEST(Cg, ZeroRhsReturnsZero) {
  const Csr<double> a = poisson(10, 10);
  const TileMatrix<double> t = csr_to_tile(a);
  tracked_vector<double> b(100, 0.0), x;
  const auto res =
      solver::conjugate_gradient(t, b, x, solver::identity_preconditioner());
  EXPECT_TRUE(res.converged);
  for (double v : x) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace tsg
