// Kronecker products and matrix norms — including the mixed-product
// identity (A (x) B)(C (x) D) = (AC) (x) (BD), a strong whole-pipeline
// property check for the tiled SpGEMM.
#include <gtest/gtest.h>

#include <cmath>

#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "matrix/norms.h"
#include "matrix/ops.h"
#include "test_support.h"

namespace tsg {
namespace {

TEST(Kronecker, DimensionsAndNnz) {
  const Csr<double> a = gen::erdos_renyi(7, 9, 20, 1);
  const Csr<double> b = gen::erdos_renyi(5, 4, 11, 2);
  const Csr<double> k = gen::kronecker(a, b);
  EXPECT_EQ(k.rows, 35);
  EXPECT_EQ(k.cols, 36);
  EXPECT_EQ(k.nnz(), a.nnz() * b.nnz());
  EXPECT_TRUE(k.validate().empty()) << k.validate();
  EXPECT_TRUE(k.rows_sorted());
}

TEST(Kronecker, ExplicitTinyCase) {
  // A = [[2, 0], [0, 3]], B = [[0, 1], [1, 0]] -> block anti-diagonals.
  Coo<double> ca, cb;
  ca.rows = ca.cols = 2;
  ca.push_back(0, 0, 2.0);
  ca.push_back(1, 1, 3.0);
  cb.rows = cb.cols = 2;
  cb.push_back(0, 1, 1.0);
  cb.push_back(1, 0, 1.0);
  const Csr<double> k = gen::kronecker(coo_to_csr(std::move(ca)), coo_to_csr(std::move(cb)));
  ASSERT_EQ(k.nnz(), 4);
  // (0,1)=2, (1,0)=2, (2,3)=3, (3,2)=3.
  EXPECT_EQ(k.col_idx[k.row_ptr[0]], 1);
  EXPECT_DOUBLE_EQ(k.val[k.row_ptr[0]], 2.0);
  EXPECT_EQ(k.col_idx[k.row_ptr[3]], 2);
  EXPECT_DOUBLE_EQ(k.val[k.row_ptr[3]], 3.0);
}

TEST(Kronecker, IdentityKronIdentityIsIdentity) {
  const Csr<double> k = gen::kronecker(identity<double>(6), identity<double>(7));
  test::expect_equal(identity<double>(42), k, "I kron I", 1e-15);
}

TEST(Kronecker, MixedProductIdentityThroughTileSpgemm) {
  // (A kron B)(C kron D) == (AC) kron (BD): exercises SpGEMM on the
  // characteristically blocked Kronecker structure.
  const Csr<double> a = gen::erdos_renyi(8, 10, 30, 3);
  const Csr<double> b = gen::erdos_renyi(6, 5, 14, 4);
  const Csr<double> c = gen::erdos_renyi(10, 7, 25, 5);
  const Csr<double> d = gen::erdos_renyi(5, 9, 18, 6);

  const Csr<double> lhs = spgemm_tile(gen::kronecker(a, b), gen::kronecker(c, d));
  const Csr<double> rhs = gen::kronecker(spgemm_tile(a, c), spgemm_tile(b, d));
  // Both sides keep full structural products; values must agree.
  CompareOptions opt;
  opt.rel_tol = 1e-10;
  opt.prune_zeros = true;
  opt.prune_tol = 1e-12;
  const CompareResult r = compare(rhs, lhs, opt);
  EXPECT_TRUE(r.equal) << r.message;
}

TEST(Norms, KnownSmallMatrix) {
  Coo<double> coo;
  coo.rows = 2;
  coo.cols = 3;
  coo.push_back(0, 0, 3.0);
  coo.push_back(0, 2, -4.0);
  coo.push_back(1, 1, 12.0);
  const Csr<double> a = coo_to_csr(std::move(coo));
  EXPECT_DOUBLE_EQ(frobenius_norm(a), 13.0);  // sqrt(9+16+144)
  EXPECT_DOUBLE_EQ(one_norm(a), 12.0);
  EXPECT_DOUBLE_EQ(inf_norm(a), 12.0);
  EXPECT_DOUBLE_EQ(max_abs(a), 12.0);
}

TEST(Norms, EmptyMatrixIsZero) {
  const Csr<double> e(4, 4);
  EXPECT_EQ(frobenius_norm(e), 0.0);
  EXPECT_EQ(one_norm(e), 0.0);
  EXPECT_EQ(inf_norm(e), 0.0);
  EXPECT_EQ(max_abs(e), 0.0);
}

TEST(Norms, SubmultiplicativityOfProducts) {
  // ||A*B||_F <= ||A||_F * ||B||_F, and the induced norms bound each other:
  // ||A||_F^2 <= ||A||_1 * ||A||_inf * rank... use the simple consistent
  // bounds that must always hold.
  const Csr<double> a = gen::erdos_renyi(40, 40, 300, 7);
  const Csr<double> b = gen::erdos_renyi(40, 40, 280, 8);
  const Csr<double> c = spgemm_tile(a, b);
  EXPECT_LE(frobenius_norm(c), frobenius_norm(a) * frobenius_norm(b) * (1 + 1e-12));
  EXPECT_LE(one_norm(c), one_norm(a) * one_norm(b) * (1 + 1e-12));
  EXPECT_LE(inf_norm(c), inf_norm(a) * inf_norm(b) * (1 + 1e-12));
}

TEST(Norms, KroneckerNormsFactor) {
  // ||A kron B||_F = ||A||_F * ||B||_F (exactly, up to rounding).
  const Csr<double> a = gen::erdos_renyi(9, 9, 25, 9);
  const Csr<double> b = gen::erdos_renyi(7, 7, 18, 10);
  EXPECT_NEAR(frobenius_norm(gen::kronecker(a, b)), frobenius_norm(a) * frobenius_norm(b),
              1e-10);
}

}  // namespace
}  // namespace tsg
