// The sparse tile data structure (Section 3.2): conversion round trips over
// all structure classes and shapes, mask/row-pointer consistency, the
// uint8 boundaries, and the column-major layout view.
#include <gtest/gtest.h>

#include "core/tile_convert.h"
#include "core/tile_format.h"
#include "core/tile_stats.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "test_support.h"

namespace tsg {
namespace {

struct RoundTripCase {
  const char* name;
  Csr<double> (*make)();
};

class TileRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(TileRoundTrip, CsrTileCsrIsIdentity) {
  const Csr<double> a = GetParam().make();
  const TileMatrix<double> t = csr_to_tile(a);
  ASSERT_TRUE(t.validate().empty()) << GetParam().name << ": " << t.validate();
  EXPECT_EQ(t.nnz(), a.nnz());
  test::expect_equal(a, tile_to_csr(t), GetParam().name, 1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    StructureClasses, TileRoundTrip,
    ::testing::Values(RoundTripCase{"er_small", test::make_er_small},
                      RoundTripCase{"er_rect", test::make_er_rect},
                      RoundTripCase{"er_dense", test::make_er_dense},
                      RoundTripCase{"rmat", test::make_rmat_small},
                      RoundTripCase{"stencil", test::make_stencil},
                      RoundTripCase{"band", test::make_band},
                      RoundTripCase{"band_wide", test::make_band_wide},
                      RoundTripCase{"blocks", test::make_blocks},
                      RoundTripCase{"clustered", test::make_clustered},
                      RoundTripCase{"hyper_sparse", test::make_hyper_sparse}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(TileFormat, GridDimensions) {
  const TileMatrix<double> t = csr_to_tile(gen::erdos_renyi(100, 50, 200, 90));
  EXPECT_EQ(t.tile_rows, 7);  // ceil(100/16)
  EXPECT_EQ(t.tile_cols, 4);  // ceil(50/16)
}

TEST(TileFormat, SingleFullTileUsesAllUint8Values) {
  const Csr<double> a = gen::dense_blocks(1, 16, 91);
  const TileMatrix<double> t = csr_to_tile(a);
  ASSERT_EQ(t.num_tiles(), 1);
  ASSERT_EQ(t.tile_nnz_of(0), 256);
  // Row pointers are 0,16,...,240 — the full uint8-representable ladder.
  for (index_t r = 0; r < kTileDim; ++r) {
    EXPECT_EQ(t.row_ptr[static_cast<std::size_t>(r)], r * 16);
    EXPECT_EQ(t.tile_mask(0)[r], 0xFFFF);
  }
  // The implied 17th row-pointer entry (tile_nnz) reconstructs 256.
  index_t lo, hi;
  t.tile_row_range(0, 15, lo, hi);
  EXPECT_EQ(lo, 240);
  EXPECT_EQ(hi, 256);
}

TEST(TileFormat, MasksMatchColumnIndices) {
  const TileMatrix<double> t = csr_to_tile(gen::rmat(9, 5.0, 92));
  for (offset_t tile = 0; tile < t.num_tiles(); ++tile) {
    for (index_t r = 0; r < kTileDim; ++r) {
      index_t lo, hi;
      t.tile_row_range(tile, r, lo, hi);
      rowmask_t rebuilt = 0;
      for (index_t k = lo; k < hi; ++k) {
        rebuilt |= bit_of(t.col_idx[static_cast<std::size_t>(t.tile_nnz[tile] + k)]);
      }
      ASSERT_EQ(rebuilt, t.tile_mask(tile)[r]);
    }
  }
}

TEST(TileFormat, EmptyMatrix) {
  const TileMatrix<double> t = csr_to_tile(Csr<double>(40, 40));
  EXPECT_EQ(t.num_tiles(), 0);
  EXPECT_EQ(t.nnz(), 0);
  EXPECT_TRUE(t.validate().empty()) << t.validate();
  const Csr<double> back = tile_to_csr(t);
  EXPECT_EQ(back.nnz(), 0);
  EXPECT_EQ(back.rows, 40);
}

TEST(TileFormat, PartialEdgeTiles) {
  // 17x17: 2x2 tile grid where the last tile row/column holds one line.
  Coo<double> coo;
  coo.rows = coo.cols = 17;
  coo.push_back(16, 16, 5.0);  // lone entry in the corner tile
  coo.push_back(16, 0, 6.0);   // bottom edge tile
  coo.push_back(0, 16, 7.0);   // right edge tile
  const Csr<double> a = coo_to_csr(std::move(coo));
  const TileMatrix<double> t = csr_to_tile(a);
  ASSERT_TRUE(t.validate().empty()) << t.validate();
  EXPECT_EQ(t.num_tiles(), 3);
  test::expect_equal(a, tile_to_csr(t), "edge tiles", 1e-15);
}

TEST(TileFormat, ValidateCatchesCorruptedMask) {
  TileMatrix<double> t = csr_to_tile(gen::banded(64, 2, 93));
  ASSERT_TRUE(t.validate().empty());
  t.mask[0] ^= 1;  // flip one bit
  EXPECT_FALSE(t.validate().empty());
}

TEST(TileFormat, ValidateCatchesBadTileOrder) {
  TileMatrix<double> t = csr_to_tile(gen::banded(64, 20, 94));
  ASSERT_GE(t.num_tiles(), 2);
  std::swap(t.tile_col_idx[0], t.tile_col_idx[1]);
  EXPECT_FALSE(t.validate().empty());
}

TEST(TileLayoutCsc, MatchesRowMajorLayout) {
  const TileMatrix<double> t = csr_to_tile(gen::rmat(8, 4.0, 95));
  const TileLayoutCsc v = tile_layout_csc(t);
  ASSERT_EQ(static_cast<offset_t>(v.row_idx.size()), t.num_tiles());
  // Every (tile row, tile col) pair present row-major must appear in the
  // column view with the right storage id, and row indices sorted per col.
  offset_t checked = 0;
  for (index_t tc = 0; tc < t.tile_cols; ++tc) {
    for (offset_t k = v.col_ptr[tc]; k < v.col_ptr[tc + 1]; ++k) {
      const index_t tr = v.row_idx[k];
      const offset_t id = v.tile_id[k];
      ASSERT_EQ(t.tile_col_idx[id], tc);
      ASSERT_GE(id, t.tile_ptr[tr]);
      ASSERT_LT(id, t.tile_ptr[tr + 1]);
      if (k > v.col_ptr[tc]) {
        ASSERT_LT(v.row_idx[k - 1], tr);
      }
      ++checked;
    }
  }
  EXPECT_EQ(checked, t.num_tiles());
}

TEST(TileStats, CountsAndBytes) {
  const Csr<double> a = gen::dense_blocks(2, 16, 96);  // two full tiles
  const TileMatrix<double> t = csr_to_tile(a);
  const TileFormatStats s = tile_format_stats(t);
  EXPECT_EQ(s.num_tiles, 2);
  EXPECT_EQ(s.nnz, 512);
  EXPECT_DOUBLE_EQ(s.avg_nnz_per_tile, 256.0);
  EXPECT_EQ(s.max_nnz_per_tile, 256);
  EXPECT_EQ(s.empty_tiles, 0);
  EXPECT_EQ(s.bytes, t.bytes());
  EXPECT_EQ(s.mask_bytes, 2u * 16 * 2);
  EXPECT_EQ(s.row_ptr_bytes, 2u * 16);
  EXPECT_GT(s.high_level_bytes, 0u);
}

TEST(TileStats, HyperSparseTilesLookLikeCop20k) {
  // Scattered nonzeros: most tiles hold ~1 nonzero (the cop20k_A pathology
  // of Section 4.2 — tile overhead dominates).
  const Csr<double> a = gen::erdos_renyi(3000, 3000, 4000, 97);
  const TileFormatStats s = tile_format_stats(csr_to_tile(a));
  EXPECT_LT(s.avg_nnz_per_tile, 1.5);
}

TEST(TileFormat, FloatInstantiationWorks) {
  const Csr<float> a = gen::cast_values<float>(gen::banded(40, 3, 98));
  const TileMatrix<float> t = csr_to_tile(a);
  EXPECT_TRUE(t.validate().empty());
  const Csr<float> back = tile_to_csr(t);
  EXPECT_EQ(back.nnz(), a.nnz());
}

}  // namespace
}  // namespace tsg
