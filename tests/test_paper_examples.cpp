// Worked examples from the paper's figures, reconstructed at tile
// granularity (the figures draw 4x4 tiles for readability; the library
// fixes 16x16, so the examples are embedded in the top-left 4 columns of
// real tiles — the arithmetic is identical).
#include <gtest/gtest.h>

#include "baselines/reference.h"
#include "core/step1.h"
#include "core/tile_convert.h"
#include "core/tile_spgemm.h"
#include "matrix/convert.h"
#include "test_support.h"

namespace tsg {
namespace {

/// Build a matrix from (tile_row, tile_col, local_row, local_col, value).
struct Entry {
  index_t tr, tc, r, c;
  double v;
};

Csr<double> from_entries(index_t tile_grid, const std::vector<Entry>& entries) {
  Coo<double> coo;
  coo.rows = coo.cols = tile_grid * kTileDim;
  for (const Entry& e : entries) {
    coo.push_back(e.tr * kTileDim + e.r, e.tc * kTileDim + e.c, e.v);
  }
  return coo_to_csr(std::move(coo));
}

// Figure 3: the first step treats each sparse tile as one nonzero and runs
// a symbolic SpGEMM on the tile layouts. We reconstruct a layout with A of
// 8 tiles and B of 6 tiles and check C's tile structure equals the symbolic
// product of the layouts.
TEST(PaperExamples, Fig3TileStructureIsSymbolicLayoutProduct) {
  // Tile layouts (4x4 grids). One nonzero per used tile is enough: step 1
  // only sees layouts.
  const std::vector<std::pair<index_t, index_t>> layout_a = {
      {0, 0}, {0, 2}, {1, 1}, {1, 3}, {2, 0}, {2, 2}, {3, 1}, {3, 3}};  // 8 tiles
  const std::vector<std::pair<index_t, index_t>> layout_b = {
      {0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 1}, {3, 2}};  // 6 tiles
  std::vector<Entry> ea, eb;
  for (auto [tr, tc] : layout_a) ea.push_back({tr, tc, 1, 1, 1.0});
  for (auto [tr, tc] : layout_b) eb.push_back({tr, tc, 1, 1, 1.0});
  const TileMatrix<double> a = csr_to_tile(from_entries(4, ea));
  const TileMatrix<double> b = csr_to_tile(from_entries(4, eb));
  ASSERT_EQ(a.num_tiles(), 8);
  ASSERT_EQ(b.num_tiles(), 6);

  const TileStructure c = step1_tile_structure(a, b);

  // Brute-force symbolic product of the two layouts.
  bool grid_a[4][4] = {}, grid_b[4][4] = {}, grid_c[4][4] = {};
  for (auto [tr, tc] : layout_a) grid_a[tr][tc] = true;
  for (auto [tr, tc] : layout_b) grid_b[tr][tc] = true;
  int expected_tiles = 0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      for (int k = 0; k < 4; ++k) grid_c[i][j] |= grid_a[i][k] && grid_b[k][j];
      expected_tiles += grid_c[i][j] ? 1 : 0;
    }
  }
  ASSERT_EQ(c.num_tiles(), expected_tiles);
  for (offset_t t = 0; t < c.num_tiles(); ++t) {
    EXPECT_TRUE(grid_c[c.tile_row_idx[static_cast<std::size_t>(t)]]
                      [c.tile_col_idx[static_cast<std::size_t>(t)]]);
  }
}

// Figure 4/5: C12 is produced by the matched pairs (A11,B12) and (A13,B32);
// the first row mask of C12 comes from OR-ing B's row masks selected by
// A11's nonzeros a00 (column 0) and a02 (column 2): 1100 | 1010 = 1110.
TEST(PaperExamples, Fig5MaskAccumulation) {
  // A tile (1,1): row 0 holds a00 at local col 0 and a02 at local col 2.
  // A tile (1,3): empty row 0 (so C row 0 only gets B12 contributions).
  std::vector<Entry> ea = {
      {1, 1, 0, 0, 1.0},  // a00
      {1, 1, 0, 2, 1.0},  // a02
      {1, 3, 5, 5, 1.0},  // A13 exists but does not touch row 0
  };
  // B tile (1,2): row 0 mask 1100 (cols 0,1), row 2 mask 1010 (cols 0,2).
  std::vector<Entry> eb = {
      {1, 2, 0, 0, 1.0},
      {1, 2, 0, 1, 1.0},  // b10 = 1100 (reading left-to-right as the figure)
      {1, 2, 2, 0, 1.0},
      {1, 2, 2, 2, 1.0},  // b12 = 1010
      {3, 2, 7, 7, 1.0},  // B32 exists but contributes nothing to row 0
  };
  const TileMatrix<double> a = csr_to_tile(from_entries(4, ea));
  const TileMatrix<double> b = csr_to_tile(from_entries(4, eb));
  const TileSpgemmResult<double> res = tile_spgemm(a, b);

  // Find tile (1,2) of C.
  const TileMatrix<double>& c = res.c;
  offset_t tile_c12 = -1;
  for (offset_t t = c.tile_ptr[1]; t < c.tile_ptr[2]; ++t) {
    if (c.tile_col_idx[t] == 2) tile_c12 = t;
  }
  ASSERT_GE(tile_c12, 0);
  // Row 0 mask: cols {0,1} from b10 OR cols {0,2} from b12 -> {0,1,2}.
  EXPECT_EQ(c.tile_mask(tile_c12)[0], rowmask_t{0b0111});
  EXPECT_EQ(popcount16(c.tile_mask(tile_c12)[0]), 3);
}

// Figure 1's headline: multiplying sparse A and B gives sparse C whose nnz
// is neither the flop count nor bounded by nnz(A)+nnz(B); the example has
// nnz(A)=8, nnz(B)=10, nnz(C)=11. We reproduce exact counts with a
// constructed pair of 6x6 matrices of those sizes.
TEST(PaperExamples, Fig1NnzRelationship) {
  Coo<double> ca, cb;
  ca.rows = ca.cols = cb.rows = cb.cols = 6;
  // A: 8 nonzeros spread over 5 rows.
  const std::pair<int, int> pa[] = {{0, 1}, {0, 4}, {1, 2}, {2, 0},
                                    {2, 5}, {3, 3}, {4, 2}, {4, 4}};
  for (auto [r, c] : pa) ca.push_back(r, c, 1.0);
  // B: 10 nonzeros chosen so C ends up with 11.
  const std::pair<int, int> pb[] = {{0, 0}, {1, 1}, {1, 3}, {2, 2}, {2, 4},
                                    {3, 5}, {4, 1}, {4, 2}, {5, 0}, {5, 5}};
  for (auto [r, c] : pb) cb.push_back(r, c, 1.0);
  const Csr<double> a = coo_to_csr(std::move(ca));
  const Csr<double> b = coo_to_csr(std::move(cb));
  ASSERT_EQ(a.nnz(), 8);
  ASSERT_EQ(b.nnz(), 10);
  const Csr<double> c_ref = spgemm_reference(a, b);
  const Csr<double> c_tile = spgemm_tile(a, b);
  EXPECT_EQ(c_ref.nnz(), 11);
  test::expect_equal(c_ref, c_tile, "fig1");
}

// Section 3.3: "the final C is allowed to store empty tiles" — build a case
// where step 1 predicts a tile that receives no nonzero because the
// contributing rows/columns of the operand tiles miss each other.
TEST(PaperExamples, EmptyTilesAreAllowedInC) {
  // A tile (0,0) has a nonzero only in column 5; B tile (0,0) has rows only
  // at row 9 — the product tile (0,0) of C is structurally empty, but the
  // tile-level symbolic (step 1) must still predict it.
  std::vector<Entry> ea = {{0, 0, 3, 5, 1.0}};
  std::vector<Entry> eb = {{0, 0, 9, 2, 1.0}};
  const TileMatrix<double> a = csr_to_tile(from_entries(1, ea));
  const TileMatrix<double> b = csr_to_tile(from_entries(1, eb));
  const TileSpgemmResult<double> res = tile_spgemm(a, b);
  ASSERT_EQ(res.c.num_tiles(), 1);    // step 1 kept the candidate tile
  EXPECT_EQ(res.c.tile_nnz_of(0), 0); // but it is empty
  EXPECT_EQ(res.c.nnz(), 0);
  EXPECT_TRUE(res.c.validate().empty()) << res.c.validate();
  // Converting back must give an all-empty CSR.
  EXPECT_EQ(tile_to_csr(res.c).nnz(), 0);
}

// Section 3.3's adaptive accumulator example: C12 dense (12 of 16 in the
// 4x4 illustration = above 75%), C32 sparse (6 of 16). At real tile size
// the threshold is 192 of 256.
TEST(PaperExamples, AccumulatorThresholdIs75Percent) {
  EXPECT_EQ(kAccumulatorThreshold, 192);
  EXPECT_EQ(kAccumulatorThreshold, kTileNnzMax * 3 / 4);
}

}  // namespace
}  // namespace tsg
