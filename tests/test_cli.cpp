// Drives the artifact-style command line tool end-to-end: writes a Matrix
// Market file, runs `tilespgemm_cli` on it (A^2 and AA^T), and checks the
// documented output lines (appendix A.8) and exit status.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gen/generators.h"
#include "matrix/io_mm.h"

#ifndef TSG_CLI_PATH
#error "TSG_CLI_PATH must be defined by the build"
#endif

namespace tsg {
namespace {

std::string run_cli(const std::string& args, int& exit_code) {
  const std::string out_path = ::testing::TempDir() + "/tsg_cli_out.txt";
  const std::string cmd = std::string(TSG_CLI_PATH) + " " + args + " > " + out_path + " 2>&1";
  exit_code = std::system(cmd.c_str());
  std::ifstream in(out_path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string write_test_matrix() {
  const std::string path = ::testing::TempDir() + "/tsg_cli_matrix.mtx";
  write_matrix_market_file(path, gen::erdos_renyi(120, 120, 900, 99));
  return path;
}

TEST(Cli, ComputesASquaredFromMtxFile) {
  const std::string mtx = write_test_matrix();
  int code = -1;
  const std::string out = run_cli("-d 0 -aat 0 " + mtx, code);
  EXPECT_EQ(code, 0) << out;
  // The documented output lines (appendix A.8).
  EXPECT_NE(out.find("rows = 120, cols = 120"), std::string::npos) << out;
  EXPECT_NE(out.find("tile size: 16 x 16"), std::string::npos);
  EXPECT_NE(out.find("#flops of C = A*A:"), std::string::npos);
  EXPECT_NE(out.find("CSR->tile conversion time:"), std::string::npos);
  EXPECT_NE(out.find("tiled structure space:"), std::string::npos);
  EXPECT_NE(out.find("step 1"), std::string::npos);
  EXPECT_NE(out.find("step 2"), std::string::npos);
  EXPECT_NE(out.find("step 3"), std::string::npos);
  EXPECT_NE(out.find("tiles of C:"), std::string::npos);
  EXPECT_NE(out.find("nnz of C:"), std::string::npos);
  EXPECT_NE(out.find("GFlops"), std::string::npos);
  EXPECT_NE(out.find("check vs independent SpGEMM: PASS"), std::string::npos) << out;
}

TEST(Cli, ComputesAATWhenRequested) {
  const std::string mtx = write_test_matrix();
  int code = -1;
  const std::string out = run_cli("-aat 1 " + mtx, code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("#flops of C = A*A^T:"), std::string::npos);
  EXPECT_NE(out.find("PASS"), std::string::npos);
}

TEST(Cli, RunsOnGeneratedMatrixWithoutArguments) {
  int code = -1;
  const std::string out = run_cli("", code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("<generated"), std::string::npos);
  EXPECT_NE(out.find("PASS"), std::string::npos);
}

TEST(Cli, FailsCleanlyOnMissingFile) {
  int code = -1;
  const std::string out = run_cli("/no/such/file.mtx", code);
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(Cli, RejectsUnknownFlags) {
  int code = -1;
  const std::string out = run_cli("--bogus", code);
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);
}

/// A matrix big enough that the per-tile footprint estimate blows past a
/// 1 MB budget: ~100x100 tile grid, C populates thousands of tiles.
std::string write_big_matrix() {
  const std::string path = ::testing::TempDir() + "/tsg_cli_big.mtx";
  write_matrix_market_file(path, gen::erdos_renyi(1600, 1600, 20000, 5));
  return path;
}

TEST(Cli, ReportsBudgetAndChunksWithTimings) {
  const std::string mtx = write_test_matrix();
  int code = -1;
  const std::string out = run_cli(mtx, code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("device budget:"), std::string::npos) << out;
  EXPECT_NE(out.find("execution chunks:"), std::string::npos) << out;
}

TEST(Cli, TinyBudgetDegradesGracefully) {
  const std::string mtx = write_big_matrix();
  int code = -1;
  const std::string out = run_cli("--budget-mb 1 " + mtx, code);
  // The multiply must complete by chunking (the correctness check may be
  // SKIPPED: the comparator baseline legitimately runs out of budget).
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("budget-limited, graceful degradation"), std::string::npos) << out;
}

TEST(Cli, NoDegradeFailsWithBudgetStatus) {
  const std::string mtx = write_big_matrix();
  int code = -1;
  const std::string out = run_cli("--budget-mb 1 --no-degrade " + mtx, code);
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("error: BudgetExceeded:"), std::string::npos) << out;
}

TEST(Cli, MalformedMatrixFailsWithIoStatus) {
  const std::string path = ::testing::TempDir() + "/tsg_cli_bad.mtx";
  {
    std::ofstream bad(path);
    bad << "%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1.0\n";
  }
  int code = -1;
  const std::string out = run_cli(path, code);
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("error: IoError:"), std::string::npos) << out;
  EXPECT_NE(out.find("line 3"), std::string::npos) << out;
}

TEST(Cli, ValidateFlagParsesAndRejectsBadLevels) {
  const std::string mtx = write_test_matrix();
  int code = -1;
  const std::string out = run_cli("--validate full " + mtx, code);
  EXPECT_EQ(code, 0) << out;
  // The documented `--flag=value` spelling works too.
  const std::string eq = run_cli("--validate=full --budget-mb=512 " + mtx, code);
  EXPECT_EQ(code, 0) << eq;
  const std::string bad = run_cli("--validate sometimes " + mtx, code);
  EXPECT_NE(code, 0);
  EXPECT_NE(bad.find("usage:"), std::string::npos);
}

}  // namespace
}  // namespace tsg
