#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"

namespace tsg {
namespace {

TEST(Parallel, ForVisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ForEmptyRange) {
  int calls = 0;
  parallel_for(5, 5, [&](int) { ++calls; });
  parallel_for(7, 3, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(Parallel, ForWithGrainCoversRange) {
  std::vector<std::atomic<int>> hits(1003);
  parallel_for(0, 1003, [&](int i) { hits[static_cast<std::size_t>(i)]++; }, 64);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ForStaticCoversRange) {
  std::vector<std::atomic<int>> hits(777);
  parallel_for_static(0, 777, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ForPropagatesException) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [&](int i) {
                     if (i == 57) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(Parallel, ReduceSumsCorrectly) {
  const long expected = 999L * 1000 / 2;
  const long got = parallel_reduce(0, 1000, 0L, [](int i) { return static_cast<long>(i); });
  EXPECT_EQ(got, expected);
}

TEST(Parallel, ReduceEmptyReturnsInit) {
  EXPECT_EQ(parallel_reduce(0, 0, 41, [](int) { return 1; }), 41);
}

TEST(Parallel, ThreadCountGuardRestores) {
  const int before = num_threads();
  {
    ThreadCountGuard guard(1);
    EXPECT_EQ(num_threads(), 1);
    std::atomic<int> count{0};
    parallel_for(0, 50, [&](int) { count++; });
    EXPECT_EQ(count.load(), 50);
  }
  EXPECT_EQ(num_threads(), before);
}

TEST(Parallel, NonZeroBeginOffset) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(40, 100, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (int i = 0; i < 40; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 0);
  for (int i = 40; i < 100; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

}  // namespace
}  // namespace tsg
