// Graph algorithms on the tiled semiring kernels, validated against
// classical sequential implementations.
#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <limits>
#include <vector>

#include "common/random.h"
#include "gen/generators.h"
#include "graph/algorithms.h"
#include "matrix/convert.h"

namespace tsg {
namespace {

/// Queue-based reference BFS.
std::vector<index_t> reference_bfs(const Csr<double>& adj, index_t source) {
  std::vector<index_t> level(static_cast<std::size_t>(adj.rows), -1);
  std::deque<index_t> queue;
  level[static_cast<std::size_t>(source)] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const index_t u = queue.front();
    queue.pop_front();
    for (offset_t k = adj.row_ptr[u]; k < adj.row_ptr[u + 1]; ++k) {
      const index_t v = adj.col_idx[k];
      if (level[static_cast<std::size_t>(v)] < 0) {
        level[static_cast<std::size_t>(v)] = level[static_cast<std::size_t>(u)] + 1;
        queue.push_back(v);
      }
    }
  }
  return level;
}

/// Floyd-Warshall reference APSP.
std::vector<double> reference_apsp(const Csr<double>& w) {
  const std::size_t n = static_cast<std::size_t>(w.rows);
  std::vector<double> d(n * n, std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) d[i * n + i] = 0.0;
  for (index_t i = 0; i < w.rows; ++i) {
    for (offset_t k = w.row_ptr[i]; k < w.row_ptr[i + 1]; ++k) {
      const std::size_t j = static_cast<std::size_t>(w.col_idx[k]);
      d[static_cast<std::size_t>(i) * n + j] =
          std::min(d[static_cast<std::size_t>(i) * n + j], w.val[k]);
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        d[i * n + j] = std::min(d[i * n + j], d[i * n + k] + d[k * n + j]);
      }
    }
  }
  return d;
}

class BfsSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BfsSweep, MatchesQueueBfs) {
  const Csr<double> g = gen::rmat(8, 4.0, GetParam());
  const auto expected = reference_bfs(g, 0);
  const auto got = graph::bfs_levels(g, 0);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_EQ(got[v], expected[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsSweep, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Bfs, PathGraphLevelsAreDistances) {
  Coo<double> coo;
  coo.rows = coo.cols = 50;
  for (index_t i = 0; i + 1 < 50; ++i) coo.push_back(i, i + 1, 1.0);
  const Csr<double> g = coo_to_csr(std::move(coo));
  const auto level = graph::bfs_levels(g, 0);
  for (index_t v = 0; v < 50; ++v) EXPECT_EQ(level[static_cast<std::size_t>(v)], v);
  // Backward unreachable from the last vertex.
  const auto back = graph::bfs_levels(g, 49);
  EXPECT_EQ(back[49], 0);
  EXPECT_EQ(back[0], -1);
}

TEST(Bfs, InvalidArguments) {
  const Csr<double> g = gen::erdos_renyi(10, 10, 20, 6);
  EXPECT_THROW(graph::bfs_levels(g, -1), std::invalid_argument);
  EXPECT_THROW(graph::bfs_levels(g, 10), std::invalid_argument);
  const Csr<double> rect = gen::erdos_renyi(10, 12, 20, 7);
  EXPECT_THROW(graph::bfs_levels(rect, 0), std::invalid_argument);
}

class ApspSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApspSweep, MatchesFloydWarshall) {
  const Csr<double> w = gen::erdos_renyi(60, 60, 300, GetParam(), {0.1, 2.0});
  const auto expected = reference_apsp(w);
  const auto got = graph::apsp_min_plus(w);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::isinf(expected[i])) {
      ASSERT_TRUE(std::isinf(got[i])) << i;
    } else {
      ASSERT_NEAR(got[i], expected[i], 1e-9) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApspSweep, ::testing::Values(1u, 2u, 3u));

TEST(Apsp, RejectsNegativeWeights) {
  Coo<double> coo;
  coo.rows = coo.cols = 3;
  coo.push_back(0, 1, -1.0);
  const Csr<double> w = coo_to_csr(std::move(coo));
  EXPECT_THROW(graph::apsp_min_plus(w), std::invalid_argument);
}

TEST(Components, PlantedComponentsRecovered) {
  // Three disjoint cliques plus isolated vertices.
  Coo<double> coo;
  coo.rows = coo.cols = 35;
  auto clique = [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) {
      for (index_t j = lo; j < hi; ++j) {
        if (i != j) coo.push_back(i, j, 1.0);
      }
    }
  };
  clique(0, 10);
  clique(10, 25);
  clique(25, 33);  // vertices 33, 34 isolated
  const Csr<double> g = coo_to_csr(std::move(coo));
  const auto label = graph::connected_components(g);
  for (index_t v = 0; v < 10; ++v) EXPECT_EQ(label[static_cast<std::size_t>(v)], 0);
  for (index_t v = 10; v < 25; ++v) EXPECT_EQ(label[static_cast<std::size_t>(v)], 10);
  for (index_t v = 25; v < 33; ++v) EXPECT_EQ(label[static_cast<std::size_t>(v)], 25);
  EXPECT_EQ(label[33], 33);
  EXPECT_EQ(label[34], 34);
}

}  // namespace
}  // namespace tsg
