// A/B bit-identity contracts for the PR-5 hot-path kernels: the word-packed
// step-2 symbolic kernel vs the scalar reference, and the matched-pair cache
// (per cost bin, and dropped under a tight device budget) vs the paper's
// recompute policy. "Bit-identical" means every array of the produced
// TileMatrix — structure and values — compares equal byte-for-byte; the
// optimisations only reorder *reads*, never the accumulation order.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/memory.h"
#include "common/random.h"
#include "core/spgemm_context.h"
#include "core/tile_convert.h"
#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "test_support.h"

namespace tsg {
namespace {

template <class V>
void expect_bytes_equal(const tracked_vector<V>& x, const tracked_vector<V>& y,
                        const std::string& what) {
  ASSERT_EQ(x.size(), y.size()) << what << " size";
  if (!x.empty()) {
    EXPECT_EQ(std::memcmp(x.data(), y.data(), x.size() * sizeof(V)), 0) << what;
  }
}

/// Bit-exact TileMatrix equality, including the double payload (memcmp, not
/// tolerance compare: the A/B paths must not change even one ulp).
void expect_tiles_identical(const TileMatrix<double>& x, const TileMatrix<double>& y,
                            const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(x.rows, y.rows);
  ASSERT_EQ(x.cols, y.cols);
  expect_bytes_equal(x.tile_ptr, y.tile_ptr, "tile_ptr");
  expect_bytes_equal(x.tile_col_idx, y.tile_col_idx, "tile_col_idx");
  expect_bytes_equal(x.tile_nnz, y.tile_nnz, "tile_nnz");
  expect_bytes_equal(x.row_ptr, y.row_ptr, "row_ptr");
  expect_bytes_equal(x.row_idx, y.row_idx, "row_idx");
  expect_bytes_equal(x.col_idx, y.col_idx, "col_idx");
  expect_bytes_equal(x.mask, y.mask, "mask");
  expect_bytes_equal(x.val, y.val, "val");
}

/// Seed-dependent square matrix mixing the structure classes that stress
/// both sides of the packed kernel's sparse/dense dispatch.
Csr<double> fuzz_matrix(std::uint64_t seed) {
  Xoshiro256 rng(seed * 6364136223846793005ull + 1442695040888963407ull);
  const index_t n = 16 + static_cast<index_t>(rng.next_below(280));
  switch (rng.next_below(5)) {
    case 0: return gen::erdos_renyi(n, n, static_cast<offset_t>(n) * 4, rng.next());
    case 1: return gen::dense_blocks(1 + n / 24, 16, rng.next());
    case 2: return gen::banded(n, 1 + static_cast<index_t>(rng.next_below(30)), rng.next());
    case 3: return gen::clustered_rows(n, 3, 8, rng.next());
    default: return gen::rmat(8, 6.0, rng.next());
  }
}

// ------------------------------------------------- packed vs scalar step2 --

class SymbolicAb : public ::testing::TestWithParam<int> {};

TEST_P(SymbolicAb, WordPackedMatchesScalarBitExact) {
  const Csr<double> a = fuzz_matrix(static_cast<std::uint64_t>(GetParam()));
  const TileMatrix<double> ta = csr_to_tile(a);
  TileSpgemmOptions packed, scalar;
  packed.symbolic = SymbolicKernel::kWordPacked;
  scalar.symbolic = SymbolicKernel::kScalar;
  expect_tiles_identical(tile_spgemm(ta, ta, scalar).c, tile_spgemm(ta, ta, packed).c,
                         "seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Fuzz, SymbolicAb, ::testing::Range(0, 32));

TEST(SymbolicAb, StructureClassesMatchBitExact) {
  const test::GenCase cases[] = {
      {"er_small", test::make_er_small},     {"er_dense", test::make_er_dense},
      {"rmat_small", test::make_rmat_small}, {"stencil9", test::make_stencil9},
      {"band_wide", test::make_band_wide},   {"blocks", test::make_blocks},
      {"clustered", test::make_clustered},   {"hyper_sparse", test::make_hyper_sparse},
  };
  for (const test::GenCase& gc : cases) {
    const TileMatrix<double> t = csr_to_tile(gc.make());
    TileSpgemmOptions packed, scalar;
    packed.symbolic = SymbolicKernel::kWordPacked;
    scalar.symbolic = SymbolicKernel::kScalar;
    expect_tiles_identical(tile_spgemm(t, t, scalar).c, tile_spgemm(t, t, packed).c,
                           gc.name);
  }
}

TEST(SymbolicAb, PackedPathStillMatchesReferenceProduct) {
  // Belt and braces: beyond A/B identity, the packed default also has to be
  // the right answer.
  const Csr<double> a = gen::dense_blocks(8, 16, 9301);
  test::check_against_reference(
      a, a, [](const Csr<double>& x, const Csr<double>& y) { return spgemm_tile(x, y); },
      "packed vs reference");
}

// --------------------------------------------- cached vs recomputed pairs --

class PairCacheAb : public ::testing::TestWithParam<int> {};

TEST_P(PairCacheAb, CachedPairsMatchRecomputeBitExact) {
  const TileMatrix<double> t =
      csr_to_tile(fuzz_matrix(static_cast<std::uint64_t>(GetParam()) + 5000));
  SpgemmContext recompute(SpgemmContext::Config{}.with_pair_cache(false));
  const TileMatrix<double> gold = recompute.run(t, t).c;
  // Every bin cached (0), the default heavy-only split (1), and a bin that
  // exceeds the binning range so the sentinel forces recompute everywhere.
  for (const int min_bin : {0, 1, 99}) {
    SpgemmContext cached(
        SpgemmContext::Config{}.with_pair_cache(true).with_pair_cache_min_bin(min_bin));
    expect_tiles_identical(gold, cached.run(t, t).c,
                           "min_bin " + std::to_string(min_bin) + " seed " +
                               std::to_string(GetParam()));
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, PairCacheAb, ::testing::Range(0, 16));

TEST(PairCacheAb, FusedPathMatchesRecomputeBitExact) {
  const TileMatrix<double> t = csr_to_tile(gen::clustered_rows(320, 3, 6, 9302));
  SpgemmContext recompute(SpgemmContext::Config{}.with_pair_cache(false));
  SpgemmContext fused(SpgemmContext::Config{}.with_fused_path(true));
  expect_tiles_identical(recompute.run(t, t).c, fused.run(t, t).c, "fused");
}

// ------------------------------------------- budget-degraded (chunked) AB --

/// Restores the process-wide budget override on scope exit.
struct BudgetOverrideGuard {
  ~BudgetOverrideGuard() { set_device_memory_budget_bytes(0); }
};

TEST(PairCacheAb, TightBudgetDropsCacheButStaysBitExact) {
  BudgetOverrideGuard guard;
  const TileMatrix<double> t = csr_to_tile(gen::banded(3000, 24, 9303));
  SpgemmContext roomy(
      SpgemmContext::Config{}.with_pair_cache(true).with_device_mem_mb(4096));
  const TileSpgemmResult<double> gold = roomy.run(t, t);
  ASSERT_FALSE(gold.timings.budget_limited);
  ASSERT_FALSE(gold.timings.pair_cache_dropped);

  // Staged degradation: the pair cache is dropped first (back to the paper's
  // recompute policy), and only then does the run chunk; dropping the cache
  // alone may already clear the budget, so only the drop flag is asserted —
  // either way the payload must not move a bit.
  SpgemmContext squeezed(
      SpgemmContext::Config{}.with_pair_cache(true).with_device_mem_mb(2));
  const TileSpgemmResult<double> degraded = squeezed.run(t, t);
  EXPECT_TRUE(degraded.timings.pair_cache_dropped);
  expect_tiles_identical(gold.c, degraded.c, "tight budget");
}

TEST(PairCacheAb, ChunkedFuzzStaysBitExact) {
  BudgetOverrideGuard guard;
  for (int seed = 0; seed < 8; ++seed) {
    const TileMatrix<double> t =
        csr_to_tile(fuzz_matrix(static_cast<std::uint64_t>(seed) + 7000));
    SpgemmContext roomy(
        SpgemmContext::Config{}.with_pair_cache(true).with_device_mem_mb(4096));
    const TileMatrix<double> gold = roomy.run(t, t).c;
    SpgemmContext squeezed(
        SpgemmContext::Config{}.with_pair_cache(true).with_device_mem_mb(1));
    expect_tiles_identical(gold, squeezed.run(t, t).c, "seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace tsg
