// SpMV consistency across the whole representative suite: the tiled SpMV
// must agree with CSR SpMV on every proxy structure — a broad integration
// net for the kernel the solver stack leans on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/tile_convert.h"
#include "core/tile_spmv.h"
#include "gen/representative.h"
#include "matrix/spmv.h"

namespace tsg {
namespace {

class SuiteSpmv : public ::testing::TestWithParam<int> {};

TEST_P(SuiteSpmv, TileAgreesWithCsrOnRepresentativeMatrix) {
  const auto suite = gen::representative_suite();
  const auto& m = suite[static_cast<std::size_t>(GetParam())];
  SCOPED_TRACE(m.name);

  const TileMatrix<double> t = csr_to_tile(m.a);
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1);
  tracked_vector<double> x(static_cast<std::size_t>(m.a.cols));
  for (auto& v : x) v = rng.next_double() * 2.0 - 1.0;

  tracked_vector<double> y_csr, y_tile;
  spmv(m.a, x, y_csr);
  tile_spmv(t, x, y_tile);
  ASSERT_EQ(y_csr.size(), y_tile.size());
  double max_mag = 0.0;
  for (double v : y_csr) max_mag = std::max(max_mag, std::fabs(v));
  for (std::size_t i = 0; i < y_csr.size(); ++i) {
    ASSERT_NEAR(y_csr[i], y_tile[i], 1e-11 * (max_mag + 1.0)) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(All18, SuiteSpmv, ::testing::Range(0, 18), [](const auto& info) {
  return "m" + std::to_string(info.param);
});

}  // namespace
}  // namespace tsg
