// The algorithm's tunables: both intersection methods, all accumulator
// policies and threshold settings must give bit-identical structure and
// tolerance-identical values — they are performance choices, not semantics.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/intersect.h"
#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "test_support.h"

namespace tsg {
namespace {

struct OptionsCase {
  const char* name;
  TileSpgemmOptions options;
};

class OptionsSweep : public ::testing::TestWithParam<OptionsCase> {};

TEST_P(OptionsSweep, AllConfigurationsMatchReference) {
  const TileSpgemmOptions& opt = GetParam().options;
  for (auto make : {test::make_er_small, test::make_band_wide, test::make_blocks,
                    test::make_rmat_small, test::make_blocks_large}) {
    const Csr<double> a = make();
    test::check_against_reference(
        a, a, [&](const Csr<double>& x, const Csr<double>& y) { return spgemm_tile(x, y, opt); },
        GetParam().name);
  }
}

std::vector<OptionsCase> option_grid() {
  std::vector<OptionsCase> grid;
  grid.push_back({"defaults", {}});
  TileSpgemmOptions o;
  o.intersect = IntersectMethod::kMerge;
  grid.push_back({"merge_intersect", o});
  o = {};
  o.accumulator = AccumulatorPolicy::kAlwaysSparse;
  grid.push_back({"always_sparse", o});
  o = {};
  o.accumulator = AccumulatorPolicy::kAlwaysDense;
  grid.push_back({"always_dense", o});
  o = {};
  o.tnnz = 0;  // adaptive but everything lands dense
  grid.push_back({"tnnz_0", o});
  o = {};
  o.tnnz = 255;  // adaptive but everything lands sparse
  grid.push_back({"tnnz_255", o});
  o = {};
  o.tnnz = 1;
  grid.push_back({"tnnz_1", o});
  o = {};
  o.cache_pairs = true;
  grid.push_back({"cache_pairs", o});
  o = {};
  o.cache_pairs = true;
  o.intersect = IntersectMethod::kMerge;
  o.accumulator = AccumulatorPolicy::kAlwaysSparse;
  grid.push_back({"cache_pairs_merge_sparse", o});
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, OptionsSweep, ::testing::ValuesIn(option_grid()),
                         [](const auto& info) { return std::string(info.param.name); });

TEST(Options, ThresholdBoundaryTilesAgree) {
  // Dense 14x14 blocks inside 16x16 tiles -> output tiles have exactly 196
  // nonzeros, straddling the paper's tnnz=192: adaptive picks dense, while
  // tnnz=200 picks sparse. Both must agree.
  const Csr<double> a = gen::dense_blocks(3, 14, 201);
  TileSpgemmOptions sparse_side;
  sparse_side.tnnz = 200;
  const Csr<double> c_dense = spgemm_tile(a, a);  // default tnnz = 192
  const Csr<double> c_sparse = spgemm_tile(a, a, sparse_side);
  test::expect_equal(c_dense, c_sparse, "threshold boundary");
}

// ------------------------------------------------- intersect unit tests --

std::vector<MatchedPair> run_intersect(const std::vector<index_t>& a_cols,
                                       const std::vector<index_t>& b_rows,
                                       IntersectMethod method) {
  std::vector<offset_t> b_ids(b_rows.size());
  for (std::size_t i = 0; i < b_ids.size(); ++i) b_ids[i] = 100 + static_cast<offset_t>(i);
  std::vector<MatchedPair> out;
  intersect_tiles(a_cols.data(), 0, static_cast<index_t>(a_cols.size()), b_rows.data(),
                  b_ids.data(), static_cast<index_t>(b_rows.size()), method, out);
  return out;
}

TEST(Intersect, BothMethodsAgreeOnRandomSets) {
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<index_t> a, b;
    index_t va = 0, vb = 0;
    const int la = 1 + static_cast<int>(rng.next_below(20));
    const int lb = 1 + static_cast<int>(rng.next_below(20));
    for (int i = 0; i < la; ++i) a.push_back(va += 1 + static_cast<index_t>(rng.next_below(4)));
    for (int i = 0; i < lb; ++i) b.push_back(vb += 1 + static_cast<index_t>(rng.next_below(4)));

    const auto r1 = run_intersect(a, b, IntersectMethod::kBinarySearch);
    const auto r2 = run_intersect(a, b, IntersectMethod::kMerge);
    ASSERT_EQ(r1.size(), r2.size()) << "trial " << trial;
    for (std::size_t i = 0; i < r1.size(); ++i) {
      ASSERT_EQ(r1[i].tile_a, r2[i].tile_a);
      ASSERT_EQ(r1[i].tile_b, r2[i].tile_b);
    }
  }
}

TEST(Intersect, PaperFigure4Example) {
  // Fig. 4: tilecolidx_A(row 1) = {0,1,3}, tilerowidx_B(col 2) = {1,3}
  // -> matches at tiles (A11,B12) and (A13,B32).
  const auto r =
      run_intersect({0, 1, 3}, {1, 3}, IntersectMethod::kBinarySearch);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].tile_a, 1);    // position of '1' in A's list
  EXPECT_EQ(r[0].tile_b, 100);  // first B tile id
  EXPECT_EQ(r[1].tile_a, 2);
  EXPECT_EQ(r[1].tile_b, 101);
}

TEST(Intersect, EmptyAndDisjoint) {
  EXPECT_TRUE(run_intersect({}, {1, 2}, IntersectMethod::kBinarySearch).empty());
  EXPECT_TRUE(run_intersect({1, 2}, {}, IntersectMethod::kBinarySearch).empty());
  EXPECT_TRUE(run_intersect({0, 2, 4}, {1, 3, 5}, IntersectMethod::kBinarySearch).empty());
  EXPECT_TRUE(run_intersect({0, 2, 4}, {1, 3, 5}, IntersectMethod::kMerge).empty());
}

TEST(Intersect, IdenticalSetsMatchFully) {
  const std::vector<index_t> s = {2, 5, 9, 11, 40};
  const auto r = run_intersect(s, s, IntersectMethod::kBinarySearch);
  ASSERT_EQ(r.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(r[i].tile_a, static_cast<offset_t>(i));
    EXPECT_EQ(r[i].tile_b, 100 + static_cast<offset_t>(i));
  }
}

}  // namespace
}  // namespace tsg
