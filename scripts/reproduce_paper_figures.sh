#!/usr/bin/env bash
# Regenerate every table and figure of the paper (the analogue of the
# artifact's reproduce_paper_figure.sh): builds, tests, then runs one bench
# binary per figure/table, teeing each output under results/.
#
# Environment knobs (see README): TSG_BENCH_REPS, TSG_DEVICE_MEM_MB,
# OMP_NUM_THREADS.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for bench in build/bench/bench_*; do
  [ -x "$bench" ] && [ -f "$bench" ] || continue
  name="$(basename "$bench")"
  echo "=== $name ==="
  if [ "$name" = "bench_micro_kernels" ]; then
    # google-benchmark binary: rejects our flags, has its own counters.
    "$bench" | tee "results/${name}.txt"
  else
    # Per-figure provenance: the metrics-registry snapshot (run counts,
    # tiles per cost bin, chunk counts, memory gauges) lands as JSON next
    # to the figure's text output.
    "$bench" --metrics "results/${name}.metrics.json" | tee "results/${name}.txt"
  fi
done
echo "All figure/table outputs written to results/ (with .metrics.json provenance)."
