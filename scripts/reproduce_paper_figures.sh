#!/usr/bin/env bash
# Regenerate every table and figure of the paper (the analogue of the
# artifact's reproduce_paper_figure.sh): builds, tests, then runs one bench
# binary per figure/table, teeing each output under results/.
#
# Environment knobs (see README): TSG_BENCH_REPS, TSG_DEVICE_MEM_MB,
# OMP_NUM_THREADS.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for bench in build/bench/bench_*; do
  [ -x "$bench" ] && [ -f "$bench" ] || continue
  name="$(basename "$bench")"
  echo "=== $name ==="
  "$bench" | tee "results/${name}.txt"
done
echo "All figure/table outputs written to results/."
