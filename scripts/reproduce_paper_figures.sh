#!/usr/bin/env bash
# Regenerate every table and figure of the paper (the analogue of the
# artifact's reproduce_paper_figure.sh): builds, tests, then runs one bench
# binary per figure/table, teeing each output under results/.
#
# Environment knobs (see README):
#   TSG_BENCH_REPS     reps per measurement (benches and the regress harness)
#   TSG_BENCH_SCALE    size multiplier for the regression-harness suite
#   TSG_DEVICE_MEM_MB  modeled device-memory budget
#   OMP_NUM_THREADS    worker count
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

cmake -B build -S . -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for bench in build/bench/bench_*; do
  [ -x "${bench}" ] && [ -f "${bench}" ] || continue
  name="$(basename "${bench}")"
  echo "=== ${name} ==="
  if [ "${name}" = "bench_micro_kernels" ]; then
    # google-benchmark binary: rejects our flags, has its own counters. Its
    # --regress mode also emits the machine-readable kernel medians that
    # BENCH_baseline.json is refreshed from (docs/PERFORMANCE.md).
    "${bench}" | tee "results/${name}.txt"
    "${bench}" --regress --emit "results/${name}.regress.json" \
      | tee -a "results/${name}.txt"
  else
    # Per-figure provenance: the metrics-registry snapshot (run counts,
    # tiles per cost bin, chunk counts, memory gauges) lands as JSON next
    # to the figure's text output.
    "${bench}" --metrics "results/${name}.metrics.json" | tee "results/${name}.txt"
  fi
done
echo "All figure/table outputs written to results/ (with .metrics.json provenance)."
