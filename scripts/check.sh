#!/usr/bin/env bash
# CI gate: build the sanitizer preset (ASan + UBSan via -DTSG_SANITIZE=ON)
# and run the full test suite under it, then build and test the regular
# preset. Any sanitizer report aborts the run (-fno-sanitize-recover=all).
#
# On top of the full suites, two dedicated robustness passes (ISSUE 2):
#   * fault injection under ASan — every injected allocation failure must
#     unwind without leaking a byte;
#   * budget stress — a 1 MB device budget must force the tiled pipeline
#     into chunked graceful degradation with bit-identical results
#     (test_device_budget asserts >= 2 chunks).
#
# Usage: scripts/check.sh [ctest-args...]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== sanitized build (ASan+UBSan) ==="
cmake -B build-asan -S . -DTSG_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}" "$@"

echo "=== robustness: fault injection under ASan ==="
# Injected bad_alloc at every allocation site: ASan proves the unwind path
# releases everything the aborted run had staged.
ctest --test-dir build-asan --output-on-failure -R test_fault_injection

echo "=== regular build ==="
cmake -B build -S .
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}" "$@"

echo "=== robustness: labeled suite + budget stress ==="
# The labeled robustness surface (Status layer, loader hardening, budget
# degradation, fault plans) in one pass...
ctest --test-dir build --output-on-failure -L robustness
# ...and the budget-stress pass: a 1 MB budget over the context sweep forces
# chunked execution on every case big enough to matter, and the bit-identity
# assertions must still hold. (test_integration and baseline binaries are
# excluded on purpose: the row-row baselines legitimately fail at 1 MB.)
TSG_DEVICE_MEM_MB=1 ./build/tests/test_spgemm_context --gtest_brief=1
TSG_DEVICE_MEM_MB=1 ./build/tests/test_fault_injection --gtest_brief=1

echo "check.sh: all green"
