#!/usr/bin/env bash
# CI gate, split into individually callable stages so the CI matrix can run
# them as separate jobs and a developer can re-run just the one that failed:
#
#   scripts/check.sh                 # every stage, in order
#   scripts/check.sh lint regular    # just these stages
#   scripts/check.sh help            # list stages
#
# Stages:
#   hygiene       no tracked build trees / run outputs (PR 5)
#   lint          tsg_lint over the whole tree + optional clang-tidy (PR 4)
#   asan          ASan+UBSan build: full suite, fault injection, obs (PR 2/3)
#   regular       regular build: full suite, robustness label, budget stress
#   tsan          ThreadSanitizer build, `-L analysis` label (PR 4)
#   service       service-layer suite under ASan + TSan, replay smoke (PR 6)
#   chaos         seeded chaos replay under ASan + TSan service label (PR 7)
#   obs_overhead  tracing disabled-overhead gate on the Fig. 10 bench (PR 3)
#   bench_regress bench-regression gate vs BENCH_baseline.json (PR 5)
#   simd          kernel A/B suites under every forced TSG_SIMD level (ISSUE 10)
#
# Environment knobs:
#   TSG_CTEST_ARGS       extra arguments appended to the full-suite ctest runs
#   TSG_OBS_GATE_REPS    reps for the obs overhead gate (default 3)
#   TSG_OBS_OVERHEAD_PCT obs overhead tolerance in percent (default 10)
#   TSG_BENCH_REPS       reps per kernel for the regression harness (default 7)
#   TSG_BENCH_SCALE      suite size multiplier for the harness (default 1.0)
#   TSG_BENCH_TOLERANCE  per-kernel regression tolerance (default 0.15)
#   TSG_BENCH_SPEEDUP    step2 packed-vs-scalar median gate (default 1.2)
#   TSG_CHAOS_SEED       seed for the chaos replay stage (default 7)
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

JOBS="$(nproc 2>/dev/null || echo 4)"
CTEST_ARGS=()
if [ -n "${TSG_CTEST_ARGS:-}" ]; then
  read -r -a CTEST_ARGS <<< "${TSG_CTEST_ARGS}"
fi

stage_hygiene() {
  echo "=== hygiene: no tracked build trees or run outputs ==="
  # `build*/` and `results/` are .gitignore'd; anything from them that is
  # nevertheless in the index was force-added (or predates the ignore) and
  # bloats every clone. `git ls-files` sees the index, not the worktree.
  local tracked
  tracked="$(git ls-files -- 'build*/**' 'results/**')"
  if [ -n "${tracked}" ]; then
    echo "error: build/run artifacts are tracked in git:" >&2
    echo "${tracked}" | head -20 >&2
    echo "fix: git rm -r --cached <dir>  (and keep .gitignore covering it)" >&2
    return 1
  fi
  echo "hygiene: clean"
}

stage_lint() {
  echo "=== static analysis: tsg_lint over the whole tree ==="
  # Fail fast (ISSUE 4/9): the project-invariant lint is seconds to build and
  # run, so it gates before the expensive sanitizer builds. Exit 1 here means
  # a rule fired without a `// tsg-lint: allow(...)` rationale and without a
  # lint_baseline.json budget covering it.
  cmake -B build -S .
  cmake --build build --target tsg_lint -j "${JOBS}"
  mkdir -p results
  ./build/tsg_lint --jobs="${JOBS}" \
    --diff-baseline --baseline=lint_baseline.json \
    --sarif=results/tsg_lint.sarif --dot=results/include_graph.dot \
    --graph-json=results/include_graph.json \
    src tools tests bench

  echo "=== static analysis: baseline canary (the gate must be able to fail) ==="
  # Prove the diff-baseline path actually rejects a fresh finding: lint a file
  # with a known violation and require exit 1. A gate that cannot go red
  # (because the baseline parser silently absorbed everything, say) is worse
  # than no gate.
  local canary
  canary="$(mktemp -t tsg_canary_XXXX.cpp)"
  printf 'void f() { rand(); }\n' > "${canary}"
  if ./build/tsg_lint --diff-baseline --baseline=lint_baseline.json \
      src tools tests bench "${canary}" >/dev/null 2>&1; then
    rm -f "${canary}"
    echo "lint: canary violation was NOT reported — the gate is broken" >&2
    return 1
  fi
  rm -f "${canary}"
  echo "lint: canary rejected as expected"

  echo "=== static analysis: header self-containment ==="
  scripts/check_headers.sh

  # Optional depth on machines that have LLVM: the curated .clang-tidy
  # profile (no-op on the gcc-only reference image; CI pins a version and
  # sets TSG_TIDY_REQUIRE=1 so the job fails loudly if the pin breaks).
  scripts/run_clang_tidy.sh build
}

stage_asan() {
  echo "=== sanitized build (ASan+UBSan) ==="
  cmake -B build-asan -S . -DTSG_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "${JOBS}"
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}" "${CTEST_ARGS[@]}"

  echo "=== robustness: fault injection under ASan ==="
  # Injected bad_alloc at every allocation site: ASan proves the unwind path
  # releases everything the aborted run had staged.
  ctest --test-dir build-asan --output-on-failure -R test_fault_injection

  echo "=== observability: trace/metrics under ASan (tracing enabled) ==="
  # The obs suite drives the per-thread rings from concurrent emitters; with
  # TSG_TRACE=1 the context tests also run fully instrumented. Any data race
  # or lifetime bug on the lock-free emit path is a sanitizer report here.
  TSG_TRACE=1 TSG_METRICS=1 ctest --test-dir build-asan --output-on-failure -L obs
  TSG_TRACE=1 TSG_METRICS=1 ./build-asan/tests/test_spgemm_context --gtest_brief=1
}

stage_regular() {
  echo "=== regular build ==="
  cmake -B build -S .
  cmake --build build -j "${JOBS}"
  ctest --test-dir build --output-on-failure -j "${JOBS}" "${CTEST_ARGS[@]}"

  echo "=== robustness: labeled suite + budget stress ==="
  # The labeled robustness surface (Status layer, loader hardening, budget
  # degradation, fault plans) in one pass...
  ctest --test-dir build --output-on-failure -L robustness
  # ...and the budget-stress pass: a 1 MB budget over the context sweep forces
  # chunked execution on every case big enough to matter, and the bit-identity
  # assertions must still hold. (test_integration and baseline binaries are
  # excluded on purpose: the row-row baselines legitimately fail at 1 MB.)
  TSG_DEVICE_MEM_MB=1 ./build/tests/test_spgemm_context --gtest_brief=1
  TSG_DEVICE_MEM_MB=1 ./build/tests/test_fault_injection --gtest_brief=1
}

stage_tsan() {
  echo "=== thread sanitizer: analysis label on the std::thread backend ==="
  # TSG_TSAN forces TSG_PARALLEL_STD: TSan cannot see libgomp's futex
  # barriers, so the OpenMP backend would drown the report in false races
  # (and a blanket libgomp suppression would mask real ones). The std backend
  # synchronises only through TSan-instrumented primitives, so `ctest -L
  # analysis` is signal-only; scripts/tsan.supp holds the (rationale-carrying)
  # exceptions and is wired in via each test's TSAN_OPTIONS property.
  cmake -B build-tsan -S . -DTSG_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "${JOBS}"
  ctest --test-dir build-tsan --output-on-failure -L analysis
}

stage_service() {
  echo "=== service layer: queue/admission/shutdown under ASan and TSan ==="
  # The service suite runs in the full ASan/TSan passes too (it carries the
  # `service` and `analysis` labels); this stage is the focused re-run for
  # service-layer changes plus the replay smoke that the full passes skip.
  cmake -B build-asan -S . -DTSG_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "${JOBS}" --target test_service
  ctest --test-dir build-asan --output-on-failure -L service
  cmake -B build-tsan -S . -DTSG_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "${JOBS}" --target test_service
  ctest --test-dir build-tsan --output-on-failure -L service

  echo "=== service replay: open-loop arrivals under an undersized budget ==="
  # Every request must end admitted, degraded (bit-identical chunked run) or
  # structurally rejected — the bench exits nonzero on any abort or on a
  # failed future while degradation is enabled.
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" --target bench_service_replay
  mkdir -p results
  ./build/bench/bench_service_replay --requests 24 --rate 400 --workers 2 \
    --queue-cap 8 --budget-mb 8 --metrics results/service_replay_metrics.json
}

stage_chaos() {
  echo "=== chaos: seeded fault replay of the request lifecycle (PR 7) ==="
  # The chaos plan below exercises every lifecycle edge at once: pop-side
  # latency (watchdog pressure + queue wait), forced cancels, tight injected
  # deadlines, and seeded allocation faults that the per-request retry
  # budget must absorb. Everything is a pure function of the seed, so a
  # failure is replayable verbatim with the echoed command line.
  local seed="${TSG_CHAOS_SEED:-7}"
  local spec='latency:site=pop,p=0.2,ms=5;cancel:p=0.15;deadline:p=0.1,ms=1;alloc:rate=0.05'
  # The PR-8 observability artifacts ride along: a request-id-tagged Perfetto
  # trace, a Prometheus snapshot of the final registry, and — on any outcome
  # the armed plan does not explain, or a fatal signal — a flight_*.json dump
  # in results/. CI uploads all of them with the metrics JSON.
  local args=(--requests 48 --rate 400 --workers 2 --queue-cap 8 --budget-mb 8
              --chaos "${spec}" --seed "${seed}" --timeout-ms 2000 --retries 2
              --stuck-ms 2000 --trace results/chaos_replay_trace.json
              --prom results/chaos_prom.txt --flight-dir results)
  run_chaos_replay() {  # $1 = bench binary
    if ! "$1" "${args[@]}" --metrics results/chaos_replay_metrics.json; then
      echo "chaos: FAILED — reproduce with:" >&2
      echo "  $1 ${args[*]}" >&2
      return 1
    fi
  }
  mkdir -p results

  # ASan first: the interesting chaos bugs are lifetime bugs (a poisoned
  # future's promise freed twice, an evicted request's workspace leaked).
  cmake -B build-asan -S . -DTSG_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "${JOBS}" --target bench_service_replay
  run_chaos_replay ./build-asan/bench/bench_service_replay

  # Then TSan on the std::thread backend: watchdog-vs-worker promise races,
  # retry bookkeeping, and the cancellation fast path are all cross-thread
  # edges. The service label re-runs the lifecycle unit tests under the
  # same build for free.
  cmake -B build-tsan -S . -DTSG_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "${JOBS}" --target bench_service_replay --target test_service
  TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp:halt_on_error=1" \
    run_chaos_replay ./build-tsan/bench/bench_service_replay
  ctest --test-dir build-tsan --output-on-failure -L service

  # The offline per-request renderer must parse what the replay just wrote —
  # a cheap end-to-end check that the trace format and the report tool agree.
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" --target tsg_obs_report
  ./build/tools/tsg_obs_report results/chaos_replay_trace.json >/dev/null
}

stage_obs_overhead() {
  echo "=== observability: disabled-overhead gate (Fig. 10 bench) ==="
  # Observability compiled in but runtime-disabled must be free: compare the
  # Fig. 10 breakdown bench (regular build, TSG_TRACING/TSG_LOGGING=ON by
  # default) against a build with both compiled out. The paper-facing target
  # is < 2 % overhead; the gate defaults to TSG_OBS_OVERHEAD_PCT=10 so
  # scheduler noise on shared CI hosts does not flake the run.
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" --target bench_fig10_breakdown
  cmake -B build-noobs -S . -DTSG_TRACING=OFF -DTSG_LOGGING=OFF >/dev/null
  cmake --build build-noobs -j "${JOBS}" --target bench_fig10_breakdown
  local reps="${TSG_OBS_GATE_REPS:-3}"
  # Sum the best-of-reps "total ms" CSV column over the 18-matrix sweep.
  sum_total_ms() {
    "$1" --csv --reps "${reps}" | awk -F, 'NF==7 && $6+0==$6 {s+=$6} END {printf "%.3f", s}'
  }
  local with_ms without_ms
  with_ms="$(sum_total_ms ./build/bench/bench_fig10_breakdown)"
  without_ms="$(sum_total_ms ./build-noobs/bench/bench_fig10_breakdown)"
  awk -v a="${with_ms}" -v b="${without_ms}" -v tol="${TSG_OBS_OVERHEAD_PCT:-10}" 'BEGIN {
    pct = (b > 0) ? 100.0 * (a - b) / b : 0.0;
    printf "tracing compiled-in-but-disabled: %s ms, no-obs build: %s ms (%+.2f%%, gate %s%%)\n",
           a, b, pct, tol;
    exit (pct > tol) ? 1 : 0;
  }'
}

stage_bench_regress() {
  echo "=== bench regression: hot-path kernels vs BENCH_baseline.json ==="
  # Medians over the step2-dominated synthetic suite (see
  # docs/PERFORMANCE.md): fails on any step2/step3 kernel more than
  # TSG_BENCH_TOLERANCE slower than the committed baseline, or if the
  # word-packed symbolic kernel loses its speedup over the scalar reference.
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" --target bench_micro_kernels
  mkdir -p results
  # One retry at double the reps: a shared host's load spike can push a
  # ~0.5 ms kernel past 15% in a single pass; a genuine regression fails
  # both passes.
  local reps="${TSG_BENCH_REPS:-7}"
  local first_pass=results/bench_regress_first_pass.log
  if ! ./build/bench/bench_micro_kernels --regress \
      --reps "${reps}" \
      --compare BENCH_baseline.json \
      --assert-speedup "${TSG_BENCH_SPEEDUP:-1.2}" \
      --emit results/bench_regress_current.json > "${first_pass}" 2>&1; then
    cat "${first_pass}"
    # Name the offenders before burning another run: the retry exists for
    # load-spike flakes, and "which kernel, how far over" is what decides
    # whether to wait for it or go fix the code.
    echo "bench_regress: gate failed once; offending kernels:"
    grep -E "REGRESSION|speedup .* below|missing" "${first_pass}" || true
    echo "bench_regress: retrying with $((reps * 2)) reps"
    ./build/bench/bench_micro_kernels --regress \
      --reps "$((reps * 2))" \
      --compare BENCH_baseline.json \
      --assert-speedup "${TSG_BENCH_SPEEDUP:-1.2}" \
      --emit results/bench_regress_current.json
  else
    cat "${first_pass}"
  fi
}

stage_simd() {
  echo "=== simd: kernel A/B suites under every forced dispatch level ==="
  # One build, then the bit-identity suites (test_kernel_ab pits the packed
  # pipeline against the scalar oracle; test_simd_dispatch A/Bs every
  # primitive and the fused bins) re-run with TSG_SIMD forcing each level.
  # Levels the host cannot execute are skipped with a notice — the CI job is
  # green on any x86-64, exhaustive on AVX-512 hardware.
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" --target test_kernel_ab --target test_simd_dispatch \
    --target bench_micro_kernels
  local available
  available="$(./build/bench/bench_micro_kernels --simd-levels)"
  echo "simd: levels available on this host: ${available//$'\n'/ }"
  local lvl
  for lvl in scalar swar avx2 avx512; do
    if ! grep -qx "${lvl}" <<< "${available}"; then
      echo "simd: SKIP ${lvl} (not available on this host)"
      continue
    fi
    echo "--- TSG_SIMD=${lvl} ---"
    TSG_SIMD="${lvl}" ./build/tests/test_kernel_ab --gtest_brief=1
    TSG_SIMD="${lvl}" ./build/tests/test_simd_dispatch --gtest_brief=1
  done
}

usage() {
  echo "usage: scripts/check.sh [stage...]"
  echo "stages: hygiene lint asan regular tsan service chaos obs_overhead bench_regress simd"
  echo "default order: all of the above"
}

main() {
  local stages=("$@")
  if [ "${#stages[@]}" -eq 0 ]; then
    stages=(hygiene lint asan regular tsan service chaos obs_overhead bench_regress simd)
  fi
  local s
  for s in "${stages[@]}"; do
    case "${s}" in
      hygiene|lint|asan|regular|tsan|service|chaos|obs_overhead|bench_regress|simd)
        "stage_${s}"
        ;;
      help|-h|--help)
        usage
        return 0
        ;;
      *)
        echo "check.sh: unknown stage '${s}'" >&2
        usage >&2
        return 2
        ;;
    esac
  done
  echo "check.sh: all green (${stages[*]})"
}

main "$@"
