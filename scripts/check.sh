#!/usr/bin/env bash
# CI gate: build the sanitizer preset (ASan + UBSan via -DTSG_SANITIZE=ON)
# and run the full test suite under it, then build and test the regular
# preset. Any sanitizer report aborts the run (-fno-sanitize-recover=all).
#
# On top of the full suites, two dedicated robustness passes (ISSUE 2):
#   * fault injection under ASan — every injected allocation failure must
#     unwind without leaking a byte;
#   * budget stress — a 1 MB device budget must force the tiled pipeline
#     into chunked graceful degradation with bit-identical results
#     (test_device_budget asserts >= 2 chunks).
#
# And two observability passes (ISSUE 3):
#   * the obs-labeled tests under ASan/UBSan with tracing force-enabled
#     (TSG_TRACE=1) — the concurrent ring-buffer emit path must be
#     sanitizer-clean;
#   * a disabled-overhead gate — the Fig. 10 breakdown bench with tracing
#     compiled in (but runtime-disabled) must not be measurably slower
#     than a -DTSG_TRACING=OFF build of the same bench.
#
# Usage: scripts/check.sh [ctest-args...]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== static analysis: tsg_lint over the whole tree ==="
# Fail fast (ISSUE 4): the project-invariant lint is seconds to build and
# run, so it gates before the expensive sanitizer builds. Exit 1 here means
# a rule fired without a `// tsg-lint: allow(...)` rationale.
cmake -B build -S .
cmake --build build --target tsg_lint -j "${JOBS}"
./build/tsg_lint src tools tests
# Optional depth on machines that have LLVM: the curated .clang-tidy
# profile (no-op on the gcc-only CI image).
scripts/run_clang_tidy.sh build

echo "=== sanitized build (ASan+UBSan) ==="
cmake -B build-asan -S . -DTSG_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}" "$@"

echo "=== robustness: fault injection under ASan ==="
# Injected bad_alloc at every allocation site: ASan proves the unwind path
# releases everything the aborted run had staged.
ctest --test-dir build-asan --output-on-failure -R test_fault_injection

echo "=== observability: trace/metrics under ASan (tracing enabled) ==="
# The obs suite drives the per-thread rings from concurrent emitters; with
# TSG_TRACE=1 the context tests also run fully instrumented. Any data race
# or lifetime bug on the lock-free emit path is a sanitizer report here.
TSG_TRACE=1 TSG_METRICS=1 ctest --test-dir build-asan --output-on-failure -L obs
TSG_TRACE=1 TSG_METRICS=1 ./build-asan/tests/test_spgemm_context --gtest_brief=1

echo "=== regular build ==="
cmake -B build -S .
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}" "$@"

echo "=== robustness: labeled suite + budget stress ==="
# The labeled robustness surface (Status layer, loader hardening, budget
# degradation, fault plans) in one pass...
ctest --test-dir build --output-on-failure -L robustness
# ...and the budget-stress pass: a 1 MB budget over the context sweep forces
# chunked execution on every case big enough to matter, and the bit-identity
# assertions must still hold. (test_integration and baseline binaries are
# excluded on purpose: the row-row baselines legitimately fail at 1 MB.)
TSG_DEVICE_MEM_MB=1 ./build/tests/test_spgemm_context --gtest_brief=1
TSG_DEVICE_MEM_MB=1 ./build/tests/test_fault_injection --gtest_brief=1

echo "=== thread sanitizer: analysis label on the std::thread backend ==="
# TSG_TSAN forces TSG_PARALLEL_STD: TSan cannot see libgomp's futex
# barriers, so the OpenMP backend would drown the report in false races
# (and a blanket libgomp suppression would mask real ones). The std backend
# synchronises only through TSan-instrumented primitives, so `ctest -L
# analysis` is signal-only; scripts/tsan.supp holds the (rationale-carrying)
# exceptions and is wired in via each test's TSAN_OPTIONS property.
cmake -B build-tsan -S . -DTSG_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "${JOBS}"
ctest --test-dir build-tsan --output-on-failure -L analysis

echo "=== observability: disabled-overhead gate (Fig. 10 bench) ==="
# Tracing compiled in but runtime-disabled must be free: compare the Fig. 10
# breakdown bench (regular build, TSG_TRACING=ON by default) against a
# -DTSG_TRACING=OFF build of the same tree. The paper-facing target is < 2 %
# overhead; the gate defaults to TSG_OBS_OVERHEAD_PCT=10 so scheduler noise
# on shared CI hosts does not flake the run.
cmake -B build-noobs -S . -DTSG_TRACING=OFF >/dev/null
cmake --build build-noobs -j "${JOBS}" --target bench_fig10_breakdown
OBS_REPS="${TSG_OBS_GATE_REPS:-3}"
# Sum the best-of-reps "total ms" CSV column over the 18-matrix sweep.
sum_total_ms() {
  "$1" --csv --reps "${OBS_REPS}" | awk -F, 'NF==7 && $6+0==$6 {s+=$6} END {printf "%.3f", s}'
}
with_ms="$(sum_total_ms ./build/bench/bench_fig10_breakdown)"
without_ms="$(sum_total_ms ./build-noobs/bench/bench_fig10_breakdown)"
awk -v a="${with_ms}" -v b="${without_ms}" -v tol="${TSG_OBS_OVERHEAD_PCT:-10}" 'BEGIN {
  pct = (b > 0) ? 100.0 * (a - b) / b : 0.0;
  printf "tracing compiled-in-but-disabled: %s ms, no-obs build: %s ms (%+.2f%%, gate %s%%)\n",
         a, b, pct, tol;
  exit (pct > tol) ? 1 : 0;
}'

echo "check.sh: all green"
