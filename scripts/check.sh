#!/usr/bin/env bash
# CI gate: build the sanitizer preset (ASan + UBSan via -DTSG_SANITIZE=ON)
# and run the full test suite under it, then build and test the regular
# preset. Any sanitizer report aborts the run (-fno-sanitize-recover=all).
#
# Usage: scripts/check.sh [ctest-args...]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== sanitized build (ASan+UBSan) ==="
cmake -B build-asan -S . -DTSG_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}" "$@"

echo "=== regular build ==="
cmake -B build -S .
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}" "$@"

echo "check.sh: all green"
