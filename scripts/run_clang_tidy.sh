#!/usr/bin/env bash
# Run the curated .clang-tidy profile over src/ and tools/. By default skips
# (exit 0) when no clang-tidy is installed: the reference CI image is
# gcc-only, and the project-specific invariants are enforced by tsg_lint
# regardless (see docs/STATIC_ANALYSIS.md). On a developer machine with LLVM
# installed this adds the general bugprone/concurrency/performance checks on
# top.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#   build-dir: a configured build tree with compile_commands.json
#              (default: build; configured on the fly if missing).
#
# Environment:
#   TSG_TIDY_BIN      clang-tidy binary to use (e.g. clang-tidy-18). CI pins
#                     a version here so check results do not drift with
#                     whatever the runner image ships (default: clang-tidy).
#   TSG_TIDY_REQUIRE  when 1, a missing binary is an error instead of a
#                     skip — set in CI so a broken pin fails loudly.
set -euo pipefail
cd "$(dirname "$0")/.."

TIDY_BIN="${TSG_TIDY_BIN:-clang-tidy}"
if ! command -v "${TIDY_BIN}" >/dev/null 2>&1; then
  if [ "${TSG_TIDY_REQUIRE:-0}" = "1" ]; then
    echo "run_clang_tidy.sh: required binary '${TIDY_BIN}' not found" >&2
    exit 2
  fi
  echo "run_clang_tidy.sh: ${TIDY_BIN} not found; skipping (tsg_lint still gates the tree)"
  exit 0
fi

BUILD_DIR="${1:-build}"
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  # Configured without the export flag; reconfigure just flips the cache var.
  cmake -B "${BUILD_DIR}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t FILES < <(find src tools -name '*.cpp' ! -path 'tools/tsg_lint/*' | sort)
# The lint tool is linted too, but tsg_lint/ compiles standalone; include it
# so the checks cover the checker.
mapfile -t -O "${#FILES[@]}" FILES < <(find tools/tsg_lint -name '*.cpp' | sort)

echo "run_clang_tidy.sh: ${#FILES[@]} files, ${TIDY_BIN} against ${BUILD_DIR}/compile_commands.json"
"${TIDY_BIN}" --version | head -1
"${TIDY_BIN}" -p "${BUILD_DIR}" --quiet "${FILES[@]}"
echo "run_clang_tidy.sh: clean"
