#!/usr/bin/env bash
# Run the curated .clang-tidy profile over src/ and tools/. Skips (exit 0)
# when clang-tidy is not installed: the reference CI image is gcc-only, and
# the project-specific invariants are enforced by tsg_lint regardless (see
# docs/STATIC_ANALYSIS.md). On a developer machine with LLVM installed this
# adds the general bugprone/concurrency/performance checks on top.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#   build-dir: a configured build tree with compile_commands.json
#              (default: build; configured on the fly if missing).
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not found; skipping (tsg_lint still gates the tree)"
  exit 0
fi

BUILD_DIR="${1:-build}"
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  # Configured without the export flag; reconfigure just flips the cache var.
  cmake -B "${BUILD_DIR}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t FILES < <(find src tools -name '*.cpp' ! -path 'tools/tsg_lint/*' | sort)
# The lint tool is linted too, but tsg_lint/ compiles standalone; include it
# so the checks cover the checker.
mapfile -t -O "${#FILES[@]}" FILES < <(find tools/tsg_lint -name '*.cpp' | sort)

echo "run_clang_tidy.sh: ${#FILES[@]} files against ${BUILD_DIR}/compile_commands.json"
clang-tidy -p "${BUILD_DIR}" --quiet "${FILES[@]}"
echo "run_clang_tidy.sh: clean"
