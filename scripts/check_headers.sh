#!/usr/bin/env bash
# Header hygiene: every public header must compile in isolation (a TU that
# includes just the header and nothing else). Catches missing includes that
# only work today because some .cpp happens to include a provider first —
# the failure mode that breaks consumers with a different include order.
#
# Usage: scripts/check_headers.sh [compiler]
# Compiler defaults to $CXX, then g++. Runs the try-compiles in parallel.
set -euo pipefail
cd "$(dirname "$0")/.."

CXX_BIN="${1:-${CXX:-g++}}"
if ! command -v "$CXX_BIN" >/dev/null 2>&1; then
  echo "check_headers: compiler '$CXX_BIN' not found" >&2
  exit 2
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

# Public headers: everything under src/ and the linter's own headers. The
# include root matches the build (src/ for the library, tools/ for tsg_lint).
fail_log="$(mktemp)"
trap 'rm -f "$fail_log"' EXIT

find src tools/tsg_lint -name '*.h' | sort | xargs -P "$JOBS" -I {} bash -c '
  hdr="$1"
  case "$hdr" in
    src/*)   inc="${hdr#src/}" ;;
    tools/*) inc="${hdr#tools/}" ;;
  esac
  if ! echo "#include \"$inc\"" | '"$CXX_BIN"' -std=c++20 -fsyntax-only \
      -Wall -Wextra -I src -I tools -x c++ - 2>/tmp/hdr_err_$$; then
    { echo "FAIL: $hdr"; sed "s/^/    /" /tmp/hdr_err_$$; } >> '"$fail_log"'
  fi
  rm -f /tmp/hdr_err_$$
' _ {}

if [ -s "$fail_log" ]; then
  cat "$fail_log" >&2
  echo "check_headers: some headers are not self-contained" >&2
  exit 1
fi
echo "check_headers: all headers compile in isolation ($CXX_BIN)"
