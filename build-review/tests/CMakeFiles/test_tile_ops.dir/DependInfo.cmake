
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tile_ops.cpp" "tests/CMakeFiles/test_tile_ops.dir/test_tile_ops.cpp.o" "gcc" "tests/CMakeFiles/test_tile_ops.dir/test_tile_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/tsg_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tsg_solver.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tsg_harness.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tsg_gen.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tsg_baselines.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tsg_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tsg_csb.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tsg_matrix.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tsg_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/tsg_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
