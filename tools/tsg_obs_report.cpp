// tsg_obs_report: render a per-request table from a Chrome-trace JSON file
// produced by obs::TraceCollector::write_chrome_trace (e.g. the --trace
// output of bench_service_replay, or TSG_TRACE_FILE from the CLI). The
// request-context propagation added in PR 8 stamps every event with
// args.req; this tool groups on that key and summarises each request's
// lifecycle the way an operator would read it in Perfetto:
//
//   req  lifecycle                  worker_ms  step1_ms  step2_ms  step3_ms  events
//
// The parser is deliberately not a general JSON reader: write_chrome_trace
// emits exactly one event object per line with stable key order, and this
// tool only consumes that format. Unknown lines are skipped, so a file with
// a foreign event mixed in degrades to a partial report, never a crash.
//
//   tsg_obs_report TRACE.json [--csv]
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

namespace {

/// Extract the value of `"key":` in `line` as a raw token (up to the next
/// ',' or '}'), or "" when absent. Values we care about are numbers and
/// simple quoted strings without escapes — true for everything the trace
/// writer emits (names are compile-time literals).
std::string raw_value(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  if (begin < line.size() && line[begin] == '"') {
    end = line.find('"', begin + 1);
    if (end == std::string::npos) return "";
    return line.substr(begin + 1, end - begin - 1);
  }
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(begin, end - begin);
}

struct RequestSummary {
  double first_ts_us = 0.0;  ///< first event carrying this request id
  double last_ts_us = 0.0;   ///< last event (end of span for ph=X)
  double worker_us = 0.0;    ///< sum of service.worker.run spans (retries add)
  double step_us[3] = {0.0, 0.0, 0.0};
  int events = 0;
  std::vector<std::string> lifecycle;  ///< service.request.* instants, in order
};

std::string fmt_ms(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", us / 1000.0);
  return buf;
}

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += ",";
    out += p;
  }
  return out.empty() ? "-" : out;
}

int run(const char* path, bool csv) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "tsg_obs_report: cannot open " << path << "\n";
    return 2;
  }

  std::map<unsigned long long, RequestSummary> requests;
  int untagged = 0, parsed = 0;
  std::string line;
  while (std::getline(in, line)) {
    const std::string name = raw_value(line, "name");
    if (name.empty()) continue;  // header / closing bracket / foreign line
    ++parsed;
    const std::string req_s = raw_value(line, "req");
    if (req_s.empty() || req_s == "0") {
      ++untagged;
      continue;
    }
    const unsigned long long req = std::strtoull(req_s.c_str(), nullptr, 10);
    const double ts = std::atof(raw_value(line, "ts").c_str());
    const std::string dur_s = raw_value(line, "dur");
    const double dur = dur_s.empty() ? 0.0 : std::atof(dur_s.c_str());

    RequestSummary& r = requests[req];
    if (r.events == 0 || ts < r.first_ts_us) r.first_ts_us = ts;
    r.last_ts_us = std::max(r.last_ts_us, ts + dur);
    ++r.events;
    if (name == "service.worker.run") {
      r.worker_us += dur;
    } else if (name == "step1") {
      r.step_us[0] += dur;
    } else if (name == "step2") {
      r.step_us[1] += dur;
    } else if (name == "step3") {
      r.step_us[2] += dur;
    } else if (name.rfind("service.request.", 0) == 0) {
      // Lifecycle instants: queued / retry / completed / failed / evicted /
      // watchdog_kill. Keep the short suffix, in emission order.
      r.lifecycle.push_back(name.substr(std::strlen("service.request.")));
    }
  }
  if (requests.empty()) {
    std::cerr << "tsg_obs_report: no request-tagged events in " << path << " ("
              << parsed << " events scanned; was tracing enabled and the work "
              << "submitted through SpgemmService?)\n";
    return 1;
  }

  const char* sep = csv ? "," : "  ";
  std::cout << "req" << sep << "lifecycle" << sep << "span_ms" << sep << "worker_ms"
            << sep << "step1_ms" << sep << "step2_ms" << sep << "step3_ms" << sep
            << "events\n";
  for (const auto& [req, r] : requests) {
    std::cout << req << sep << join(r.lifecycle) << sep
              << fmt_ms(r.last_ts_us - r.first_ts_us) << sep << fmt_ms(r.worker_us)
              << sep << fmt_ms(r.step_us[0]) << sep << fmt_ms(r.step_us[1]) << sep
              << fmt_ms(r.step_us[2]) << sep << r.events << "\n";
  }
  if (!csv) {
    std::cout << "\n" << requests.size() << " request(s), " << parsed
              << " events total, " << untagged << " untagged (library-internal)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (!path) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (!path) {
    std::cerr << "usage: tsg_obs_report TRACE.json [--csv]\n";
    return 2;
  }
  return run(path, csv);
}
