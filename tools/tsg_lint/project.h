// Project mode of tsg-lint: the whole-tree semantic pass.
//
// `lint_project` is the two-pass engine on top of the per-file rules:
//
//   pass 1  lex every file (parallel), build the include graph and the
//           cross-file symbol index
//   pass 2  run the per-file rules AND the semantic rules over each file
//           (parallel), then the graph checks (include-cycle,
//           layer-violation) once
//
// Semantic rules see the whole project through ProjectContext — that is
// what lets `expected-flow` know a callee's return type from another
// translation unit and `cancel-poll` follow a poll into a helper function.
//
// Suppression is uniform: `// tsg-lint: allow(rule)` on the finding's line
// or the line above. For graph findings on `#include` lines only the
// line-above placement works — a trailing comment on a directive line is
// consumed by the preprocessor skip and never parsed.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "tsg_lint/include_graph.h"
#include "tsg_lint/lint.h"
#include "tsg_lint/symbol_index.h"

namespace tsg::lint {

/// Everything a semantic rule may consult. Vectors are parallel to the
/// original input order; `lexed[i]` is the lex of `files[i]`.
struct ProjectContext {
  const std::vector<FileInput>* files = nullptr;
  std::vector<const LexedFile*> lexed;
  const SymbolIndex* index = nullptr;
  const IncludeGraph* graph = nullptr;
};

/// A rule that runs once per file but sees the whole project.
struct SemanticRule {
  std::string name;
  std::string summary;  ///< one line, shown by --list
  std::function<void(const ProjectContext&, std::size_t file_index,
                     std::vector<Diagnostic>&)>
      check;
};

/// All registered semantic rules, in report order.
const std::vector<SemanticRule>& semantic_rule_catalogue();

/// Name + summary of every rule the tool can emit: per-file rules, semantic
/// rules, then the two graph rules. This is the --list output and the SARIF
/// driver rule table; order is stable.
struct RuleInfo {
  std::string name;
  std::string summary;
};
std::vector<RuleInfo> all_rule_info();

struct ProjectResult {
  /// Findings after suppression, sorted by (path, line, rule).
  std::vector<Diagnostic> diagnostics;
  LintStats stats;
  /// The include graph, for --dot / --graph-json emission by the CLI.
  IncludeGraph graph;
};

/// Lint the whole file set. `jobs` <= 0 means hardware concurrency. The
/// engine owns the file contents for the duration (token views point into
/// them).
ProjectResult lint_project(std::vector<FileInput> files, const Options& options = {},
                           int jobs = 0);

}  // namespace tsg::lint
