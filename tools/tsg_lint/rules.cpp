#include "tsg_lint/lint.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <string_view>

namespace tsg::lint {

namespace {

using Tokens = std::vector<Token>;

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Index of the matching close for the open paren/bracket at `open`
/// (which must point at `(` or `[`), or tokens.size() when unbalanced.
std::size_t matching_close(const Tokens& toks, std::size_t open) {
  const std::string_view opener = toks[open].text;
  const std::string_view closer = opener == "(" ? ")" : "]";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == opener) ++depth;
    if (toks[i].text == closer && --depth == 0) return i;
  }
  return toks.size();
}

/// True when toks[i] is a `*` that reads as a binary multiply: the previous
/// token must be something a value expression can end with. Filters out
/// dereferences (`resize(*p)`) and pointer declarators (`T* p`): those have
/// `(`/`,`/ident-type contexts we cannot fully resolve, but requiring a
/// value-ish left operand removes the common false positives.
bool is_binary_multiply(const Tokens& toks, std::size_t i) {
  if (!is_punct(toks[i], "*")) return false;
  if (i == 0) return false;
  const Token& prev = toks[i - 1];
  if (prev.kind == TokKind::kIdentifier || prev.kind == TokKind::kNumber) return true;
  return is_punct(prev, ")") || is_punct(prev, "]");
}

bool region_has_unchecked_multiply(const Tokens& toks, std::size_t open,
                                   std::size_t close, int* mul_line) {
  bool has_mul = false;
  for (std::size_t i = open + 1; i < close; ++i) {
    if (toks[i].kind == TokKind::kIdentifier &&
        toks[i].text.substr(0, 8) == "checked_") {
      return false;  // the whole expression routes through a checked helper
    }
    if (!has_mul && is_binary_multiply(toks, i)) {
      has_mul = true;
      *mul_line = toks[i].line;
    }
  }
  return has_mul;
}

bool path_contains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// raw-alloc: malloc/calloc/realloc calls and array-new outside the memory
// layer. Everything must go through MemoryTracker so the Fig. 9 budget
// accounting stays truthful.
// ---------------------------------------------------------------------------
void check_raw_alloc(const FileContext& file, std::vector<Diagnostic>& out) {
  if (path_contains(file.path, "src/common/memory.")) return;
  const Tokens& toks = file.lexed->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;

    if (t.text == "malloc" || t.text == "calloc" || t.text == "realloc") {
      if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
      if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
        continue;  // member function of some unrelated type
      }
      out.push_back({"raw-alloc", file.path, t.line,
                     "call to " + std::string(t.text) +
                         "() bypasses MemoryTracker; allocate through "
                         "src/common/memory.h (tracked_vector / TrackedAllocator)"});
      continue;
    }

    if (t.text == "new") {
      if (i > 0 && is_ident(toks[i - 1], "operator")) continue;
      // Array new: a `[` shows up in the type part of the new-expression,
      // before the expression ends or an initializer starts.
      bool is_array = false;
      const std::size_t horizon = std::min(toks.size(), i + 24);
      for (std::size_t j = i + 1; j < horizon; ++j) {
        if (toks[j].kind != TokKind::kPunct) continue;
        const std::string_view p = toks[j].text;
        if (p == "[") {
          is_array = true;
          break;
        }
        if (p == "(" || p == "{" || p == ";" || p == "," || p == ")") break;
      }
      if (is_array) {
        out.push_back({"raw-alloc", file.path, t.line,
                       "array new[] bypasses MemoryTracker; use tracked_vector "
                       "from src/common/memory.h"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// unchecked-size-mul: a multiply feeding an allocation size must go through
// checked_mul/checked_size_mul (src/common/status.h) — tile-count products
// are exactly where n*16 or rows*cols overflows on pathological inputs.
// ---------------------------------------------------------------------------
void check_unchecked_size_mul(const FileContext& file, std::vector<Diagnostic>& out) {
  const Tokens& toks = file.lexed->tokens;
  auto scan_region = [&](std::size_t open, std::string_view what) {
    const std::size_t close = matching_close(toks, open);
    if (close >= toks.size()) return;
    int mul_line = 0;
    if (region_has_unchecked_multiply(toks, open, close, &mul_line)) {
      out.push_back({"unchecked-size-mul", file.path, mul_line,
                     "multiplication feeds the size of " + std::string(what) +
                         " without checked_mul/checked_size_mul "
                         "(src/common/status.h)"});
    }
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;

    if ((t.text == "malloc" || t.text == "calloc" || t.text == "realloc") &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
      scan_region(i + 1, t.text);
      continue;
    }

    if ((t.text == "resize" || t.text == "reserve" || t.text == "assign") &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(") && i > 0 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      scan_region(i + 1, t.text);
      continue;
    }

    if (t.text == "new") {
      const std::size_t horizon = std::min(toks.size(), i + 24);
      for (std::size_t j = i + 1; j < horizon; ++j) {
        if (toks[j].kind != TokKind::kPunct) continue;
        const std::string_view p = toks[j].text;
        if (p == "[") {
          scan_region(j, "new[]");
          break;
        }
        if (p == "(" || p == "{" || p == ";" || p == "," || p == ")") break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// discarded-status: a statement that is nothing but a call to a try_*
// function throws away its Status/Expected. The [[nodiscard]] annotations in
// src/common/status.h catch this at compile time when warnings are on; the
// lint keeps the gate independent of compiler flags.
// ---------------------------------------------------------------------------
void check_discarded_status(const FileContext& file, std::vector<Diagnostic>& out) {
  const Tokens& toks = file.lexed->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Anchor at a statement start so `return try_x();`, `auto s = try_x();`
    // and `if (try_x())` never match: those consume the result.
    const bool at_start = i == 0 || is_punct(toks[i - 1], ";") ||
                          is_punct(toks[i - 1], "{") || is_punct(toks[i - 1], "}");
    if (!at_start) continue;
    if (toks[i].kind != TokKind::kIdentifier) continue;

    // Walk the qualified/member chain: ident ((:: | . | ->) ident)*.
    std::size_t j = i;
    while (j + 2 < toks.size() &&
           (is_punct(toks[j + 1], "::") || is_punct(toks[j + 1], ".") ||
            is_punct(toks[j + 1], "->")) &&
           toks[j + 2].kind == TokKind::kIdentifier) {
      j += 2;
    }
    if (toks[j].text.substr(0, 4) != "try_") continue;
    if (j + 1 >= toks.size() || !is_punct(toks[j + 1], "(")) continue;
    const std::size_t close = matching_close(toks, j + 1);
    if (close + 1 >= toks.size() || !is_punct(toks[close + 1], ";")) continue;

    out.push_back({"discarded-status", file.path, toks[j].line,
                   "result of " + std::string(toks[j].text) +
                       "() is discarded; check the Status/Expected or use the "
                       "throwing twin"});
  }
}

// ---------------------------------------------------------------------------
// throw-in-parallel: a throw inside a parallel_for body in src/core escapes
// through the thread team. ExceptionTrap only rescues exceptions funneled
// through it, and the std::thread backend would call std::terminate; the
// core pipeline reports errors via Status instead.
// ---------------------------------------------------------------------------
void check_throw_in_parallel(const FileContext& file, std::vector<Diagnostic>& out) {
  if (!path_contains(file.path, "src/core/")) return;
  const Tokens& toks = file.lexed->tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    if (t.text != "parallel_for" && t.text != "parallel_for_static" &&
        t.text != "parallel_reduce") {
      continue;
    }
    if (!is_punct(toks[i + 1], "(")) continue;
    const std::size_t close = matching_close(toks, i + 1);
    for (std::size_t j = i + 2; j < close; ++j) {
      if (is_ident(toks[j], "throw")) {
        out.push_back({"throw-in-parallel", file.path, toks[j].line,
                       "throw inside a " + std::string(t.text) +
                           " body; report errors via Status (see "
                           "src/common/status.h) — exceptions do not cross "
                           "the thread team"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// trace-span-pairing: every TSG_TRACE_BEGIN("name") in a file needs a
// matching TSG_TRACE_END("name"), or the Chrome trace viewer nests every
// later span under the unclosed one.
// ---------------------------------------------------------------------------
void check_trace_span_pairing(const FileContext& file, std::vector<Diagnostic>& out) {
  const Tokens& toks = file.lexed->tokens;
  struct SpanCount {
    int begins = 0;
    int ends = 0;
    int line = 0;  ///< line of the first sighting, for the report
  };
  std::map<std::string, SpanCount> spans;

  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    const bool is_begin = t.text == "TSG_TRACE_BEGIN";
    const bool is_end = t.text == "TSG_TRACE_END";
    if (!is_begin && !is_end) continue;
    if (!is_punct(toks[i + 1], "(")) continue;
    const Token& arg = toks[i + 2];
    if (arg.kind != TokKind::kString) {
      out.push_back({"trace-span-pairing", file.path, t.line,
                     std::string(t.text) +
                         " span name must be a string literal so begin/end "
                         "pairing is checkable"});
      continue;
    }
    SpanCount& sc = spans[std::string(arg.text)];
    if (sc.line == 0) sc.line = t.line;
    (is_begin ? sc.begins : sc.ends)++;
  }

  for (const auto& [name, sc] : spans) {
    if (sc.begins == sc.ends) continue;
    out.push_back({"trace-span-pairing", file.path, sc.line,
                   "span " + name + " has " + std::to_string(sc.begins) +
                       " TSG_TRACE_BEGIN but " + std::to_string(sc.ends) +
                       " TSG_TRACE_END in this file"});
  }
}

// ---------------------------------------------------------------------------
// unbounded-wait: a naked future .get() / .wait(), or a condition-variable
// wait without a predicate, blocks forever when the completing side dies —
// exactly the failure the service's watchdog and deadline machinery exist
// to make impossible. Scoped to src/service and tests/, where every wait
// must be bounded (wait_for + deadline, or the tests' await() helper) or
// carry an explicit `tsg-lint: allow(unbounded-wait)` rationale.
// ---------------------------------------------------------------------------
void check_unbounded_wait(const FileContext& file, std::vector<Diagnostic>& out) {
  if (!path_contains(file.path, "src/service") && !path_contains(file.path, "tests/")) {
    return;
  }
  const Tokens& toks = file.lexed->tokens;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    // Member calls only: `x.get()` / `cv.wait(lock)`. Free functions named
    // get/wait are somebody else's API.
    if (!is_punct(toks[i - 1], ".") && !is_punct(toks[i - 1], "->")) continue;
    if (!is_punct(toks[i + 1], "(")) continue;

    if (t.text == "get") {
      // Zero-argument .get(): on a future this is an unbounded block. (A
      // smart pointer's .get() in these directories trips this too — the
      // suppression comment is the annotated escape hatch.)
      if (is_punct(toks[i + 2], ")")) {
        out.push_back({"unbounded-wait", file.path, t.line,
                       "naked .get() waits forever if the worker never resolves the "
                       "future; bound it (wait_for + deadline, tests' await()) or "
                       "annotate with tsg-lint: allow(unbounded-wait)"});
      }
      continue;
    }

    if (t.text == "wait") {
      // cv.wait(lock) re-sleeps on spurious wake-ups but never times out and
      // never re-checks state; demand wait(lock, predicate) (or the *_for /
      // *_until variants, which this rule does not match).
      const std::size_t close = matching_close(toks, i + 1);
      if (close >= toks.size()) continue;
      int depth = 0;
      bool has_predicate = false;
      for (std::size_t j = i + 1; j < close && !has_predicate; ++j) {
        if (toks[j].kind != TokKind::kPunct) continue;
        const std::string_view p = toks[j].text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        if (p == ")" || p == "]" || p == "}") --depth;
        if (p == "," && depth == 1) has_predicate = true;
      }
      if (!has_predicate) {
        out.push_back({"unbounded-wait", file.path, t.line,
                       ".wait() without a predicate (or a *_for/*_until bound) can "
                       "block forever; pass the condition as a predicate or wait "
                       "with a timeout"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// banned-fn: non-reentrant / unbounded C functions. rand() breaks run
// reproducibility (matrices must come from seeded generators), strtok keeps
// hidden global state across parallel sections, sprintf has no bound.
// ---------------------------------------------------------------------------
void check_banned_fn(const FileContext& file, std::vector<Diagnostic>& out) {
  static const std::map<std::string_view, std::string_view> kBanned = {
      {"rand", "use a seeded std::mt19937 (reproducible runs)"},
      {"srand", "use a seeded std::mt19937 (reproducible runs)"},
      {"strtok", "keeps hidden global state; not reentrant across parallel sections"},
      {"sprintf", "unbounded write; use snprintf or std::string formatting"},
      {"vsprintf", "unbounded write; use vsnprintf"},
      {"gets", "unbounded read; removed from the language"},
  };
  const Tokens& toks = file.lexed->tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    const auto it = kBanned.find(t.text);
    if (it == kBanned.end()) continue;
    if (!is_punct(toks[i + 1], "(")) continue;
    if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      continue;  // member function of some unrelated type
    }
    out.push_back({"banned-fn", file.path, t.line,
                   std::string(t.text) + "() is banned: " + std::string(it->second)});
  }
}

// ---------------------------------------------------------------------------
// raw-log: direct printf/fprintf/std::cerr/std::cout in src/ outside the
// logger itself. Library diagnostics must go through the structured logger
// (src/obs/log.h) so every record is JSON, leveled, rate-limited, and
// stamped with the ambient request context; a raw stream write is invisible
// to the flight recorder and unjoinable with the trace. CLI/bench/tools/
// tests keep direct streams — human-facing output is their job.
// ---------------------------------------------------------------------------
void check_raw_log(const FileContext& file, std::vector<Diagnostic>& out) {
  // Scope: library sources only. Paths are repo-relative (the lint_tree
  // target runs `tsg_lint src tools tests` from the source root).
  if (file.path.rfind("src/", 0) != 0) return;
  if (path_contains(file.path, "src/obs/log.")) return;  // the sink itself
  const Tokens& toks = file.lexed->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;

    if (t.text == "printf" || t.text == "fprintf" || t.text == "vprintf" ||
        t.text == "vfprintf" || t.text == "puts" || t.text == "fputs") {
      if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
      if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
        continue;  // member function of some unrelated type
      }
      out.push_back({"raw-log", file.path, t.line,
                     "call to " + std::string(t.text) +
                         "() in library code; route diagnostics through the "
                         "structured logger (TSG_LOG_* in src/obs/log.h)"});
      continue;
    }

    if (t.text == "cerr" || t.text == "cout") {
      out.push_back({"raw-log", file.path, t.line,
                     "std::" + std::string(t.text) +
                         " in library code; route diagnostics through the "
                         "structured logger (TSG_LOG_* in src/obs/log.h)"});
    }
  }
}

}  // namespace

const std::vector<Rule>& rule_catalogue() {
  static const std::vector<Rule> kRules = {
      {"raw-alloc",
       "malloc/calloc/realloc and new[] outside src/common/memory.*",
       check_raw_alloc},
      {"unchecked-size-mul",
       "multiplication feeding an allocation size without checked_mul",
       check_unchecked_size_mul},
      {"discarded-status",
       "statement-level try_* call whose Status/Expected result is dropped",
       check_discarded_status},
      {"throw-in-parallel",
       "throw lexically inside a parallel_for body in src/core",
       check_throw_in_parallel},
      {"trace-span-pairing",
       "TSG_TRACE_BEGIN/TSG_TRACE_END per-file, per-name balance",
       check_trace_span_pairing},
      {"unbounded-wait",
       "naked future .get()/.wait() or predicate-less cv wait in src/service and tests",
       check_unbounded_wait},
      {"banned-fn",
       "rand/srand/strtok/sprintf/vsprintf/gets",
       check_banned_fn},
      {"raw-log",
       "direct printf/fprintf/std::cerr/std::cout in src/ outside src/obs/log.*",
       check_raw_log},
  };
  return kRules;
}

std::vector<Diagnostic> lint_source(const std::string& path, std::string_view content,
                                    const Options& options, LintStats* stats) {
  const LexedFile lexed = lex(content);
  FileContext file;
  file.path = path;
  file.lexed = &lexed;

  std::vector<Diagnostic> raw;
  for (const Rule& rule : rule_catalogue()) {
    if (!options.only_rules.empty() && options.only_rules.count(rule.name) == 0) {
      continue;
    }
    rule.check(file, raw);
  }

  std::vector<Diagnostic> kept;
  kept.reserve(raw.size());
  for (Diagnostic& d : raw) {
    if (is_suppressed(lexed, d.rule, d.line)) {
      if (stats != nullptr) ++stats->suppressed;
      continue;
    }
    kept.push_back(std::move(d));
  }
  if (stats != nullptr) ++stats->files;
  return kept;
}

}  // namespace tsg::lint
