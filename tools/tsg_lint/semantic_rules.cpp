// The index-driven rules of tsg-lint project mode. Each runs per file but
// consults the cross-file SymbolIndex, which is what the lexical rules in
// rules.cpp cannot do. See docs/STATIC_ANALYSIS.md for the invariant each
// rule encodes.
#include "tsg_lint/project.h"

#include <cstddef>
#include <set>
#include <string_view>

namespace tsg::lint {

namespace {

using Tokens = std::vector<Token>;

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

std::size_t matching_close(const Tokens& toks, std::size_t open) {
  const std::string_view opener = toks[open].text;
  const std::string_view closer = opener == "(" ? ")" : (opener == "{" ? "}" : "]");
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == opener) ++depth;
    if (toks[i].text == closer && --depth == 0) return i;
  }
  return toks.size();
}

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------------------
// cancel-poll: a tile/chunk loop in a src/core step kernel must reach a
// CancelToken poll — directly (`should_stop` / `check_cancelled`) or through
// a callee the index knows to poll. This is the PR-7 strided-poll invariant:
// without it, a cancelled request keeps burning the whole tile range and the
// deadline machinery only takes effect between phases.
// ---------------------------------------------------------------------------

/// True when the token range (begin, end) polls: a direct poll identifier,
/// or a call to a function whose body transitively polls.
bool region_polls(const ProjectContext& ctx, const Tokens& toks, std::size_t begin,
                  std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    if (toks[i].text == "should_stop" || toks[i].text == "check_cancelled") return true;
    if (i + 1 < end && is_punct(toks[i + 1], "(") &&
        ctx.index->reaches_poll(toks[i].text)) {
      return true;
    }
  }
  return false;
}

bool region_mentions_tiles(const Tokens& toks, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    if (toks[i].text == "ntiles" || toks[i].text == "num_tiles") return true;
  }
  return false;
}

void check_cancel_poll(const ProjectContext& ctx, std::size_t file_index,
                       std::vector<Diagnostic>& out) {
  const FileInput& input = (*ctx.files)[file_index];
  if (!starts_with(input.path, "src/core/")) return;
  const Tokens& toks = ctx.lexed[file_index]->tokens;

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;

    // Form 1: a parallel loop over the tile range. The whole argument list
    // (range + lambda body) is the region.
    if (t.text == "parallel_for" || t.text == "parallel_for_static" ||
        t.text == "parallel_reduce") {
      if (!is_punct(toks[i + 1], "(")) continue;
      const std::size_t close = matching_close(toks, i + 1);
      if (close >= toks.size()) continue;
      if (!region_mentions_tiles(toks, i + 2, close)) continue;
      if (!region_polls(ctx, toks, i + 2, close)) {
        out.push_back({"cancel-poll", input.path, t.line,
                       std::string(t.text) +
                           " over the tile range never polls the CancelToken; add "
                           "the strided poll (see src/core/step2.cpp) or call a "
                           "helper that does — cancellation latency must not be "
                           "the whole tile range"});
      }
      i = close;
      continue;
    }

    // Form 2: a serial `for` whose header mentions a chunk cursor (the
    // service-side chunked submission path).
    if (t.text == "for" && is_punct(toks[i + 1], "(")) {
      const std::size_t hclose = matching_close(toks, i + 1);
      if (hclose + 1 >= toks.size() || !is_punct(toks[hclose + 1], "{")) continue;
      bool chunked = false;
      for (std::size_t j = i + 2; j < hclose && !chunked; ++j) {
        chunked = toks[j].kind == TokKind::kIdentifier &&
                  toks[j].text.find("chunk") != std::string_view::npos;
      }
      if (!chunked) continue;
      const std::size_t bclose = matching_close(toks, hclose + 1);
      if (bclose >= toks.size()) continue;
      if (!region_polls(ctx, toks, hclose + 2, bclose)) {
        out.push_back({"cancel-poll", input.path, t.line,
                       "chunk loop never polls the CancelToken; call "
                       "check_cancelled() (or a polling helper) once per chunk"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// scope-pairing: manual begin/end calls that bypass the RAII scope types.
// A throw, an early return, or a cancelled chunk between the two halves
// leaves the global armed — which is precisely what FaultInjectionScope,
// ChaosScope, RequestScope and the lock guards exist to make impossible.
// ---------------------------------------------------------------------------
void check_scope_pairing(const ProjectContext& ctx, std::size_t file_index,
                         std::vector<Diagnostic>& out) {
  const FileInput& input = (*ctx.files)[file_index];
  const Tokens& toks = ctx.lexed[file_index]->tokens;

  // Receivers declared as guard-ish types in this file are exempt from the
  // lock/unlock check: re-locking a unique_lock and weak_ptr::lock() are
  // both fine. Pattern: guard-type [<...>] name.
  std::set<std::string_view> guard_names;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    if (t.text != "unique_lock" && t.text != "shared_lock" && t.text != "scoped_lock" &&
        t.text != "lock_guard" && t.text != "weak_ptr") {
      continue;
    }
    std::size_t j = i + 1;
    if (is_punct(toks[j], "<")) {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].kind != TokKind::kPunct) continue;
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
        if (toks[j].text == ">>") {
          depth -= 2;
          if (depth <= 0) {
            ++j;
            break;
          }
        }
      }
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdentifier) {
      guard_names.insert(toks[j].text);
    }
  }

  const bool in_memory_layer = starts_with(input.path, "src/common/memory.");
  const bool in_chaos_layer = starts_with(input.path, "src/chaos/");
  const bool in_request_ctx = input.path == "src/obs/request_context.h";

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;

    // Fault plans: set without a scope leaks the plan into every later
    // allocation on that thread.
    if (!in_memory_layer &&
        (t.text == "set_fault_plan" || t.text == "clear_fault_plan") &&
        is_punct(toks[i + 1], "(")) {
      out.push_back({"scope-pairing", input.path, t.line,
                     std::string(t.text) +
                         "() called directly; use FaultInjectionScope "
                         "(src/common/memory.h) so the plan is cleared on every "
                         "exit path"});
      continue;
    }

    // Chaos engine: arm/disarm on ChaosEngine outside its own module.
    if (!in_chaos_layer && (t.text == "arm" || t.text == "disarm") &&
        is_punct(toks[i + 1], "(") && i >= 2 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      bool on_chaos_engine = false;
      const std::size_t back = i >= 8 ? i - 8 : 0;
      for (std::size_t j = i; j-- > back;) {
        if (is_ident(toks[j], "ChaosEngine")) {
          on_chaos_engine = true;
          break;
        }
        if (is_punct(toks[j], ";") || is_punct(toks[j], "{")) break;
      }
      if (on_chaos_engine) {
        out.push_back({"scope-pairing", input.path, t.line,
                       "ChaosEngine::" + std::string(t.text) +
                           "() called directly; use ChaosScope (src/chaos/chaos.h) "
                           "so the engine disarms on every exit path"});
      }
      continue;
    }

    // Request context: writing the thread-local directly skips the
    // save/restore that makes nesting safe.
    if (!in_request_ctx && t.text == "t_request" && is_punct(toks[i + 1], "=")) {
      out.push_back({"scope-pairing", input.path, t.line,
                     "detail::t_request assigned directly; use RequestScope "
                     "(src/obs/request_context.h) so the previous context is "
                     "restored on scope exit"});
      continue;
    }

    // Mutexes: manual lock()/unlock() on anything that is not a declared
    // guard object.
    if ((t.text == "lock" || t.text == "unlock") && is_punct(toks[i + 1], "(") &&
        i + 2 < toks.size() && is_punct(toks[i + 2], ")") && i >= 2 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      const Token& recv = toks[i - 2];
      if (recv.kind == TokKind::kIdentifier && guard_names.count(recv.text) > 0) {
        continue;
      }
      out.push_back({"scope-pairing", input.path, t.line,
                     "manual ." + std::string(t.text) +
                         "() on a mutex; use std::lock_guard/std::unique_lock so "
                         "the unlock survives exceptions and early returns"});
    }
  }
}

// ---------------------------------------------------------------------------
// expected-flow: a statement that is nothing but a call to a function the
// index knows to return Status/Expected — from any translation unit —
// discards the error channel. This is the interprocedural big sibling of
// the lexical discarded-status rule (which only knows the try_* naming
// convention); try_* names are left to that rule.
// ---------------------------------------------------------------------------
void check_expected_flow(const ProjectContext& ctx, std::size_t file_index,
                         std::vector<Diagnostic>& out) {
  const FileInput& input = (*ctx.files)[file_index];
  const Tokens& toks = ctx.lexed[file_index]->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const bool at_start = i == 0 || is_punct(toks[i - 1], ";") ||
                          is_punct(toks[i - 1], "{") || is_punct(toks[i - 1], "}");
    if (!at_start) continue;
    if (toks[i].kind != TokKind::kIdentifier) continue;

    // Walk the qualified/member chain: ident ((:: | . | ->) ident)*.
    std::size_t j = i;
    while (j + 2 < toks.size() &&
           (is_punct(toks[j + 1], "::") || is_punct(toks[j + 1], ".") ||
            is_punct(toks[j + 1], "->")) &&
           toks[j + 2].kind == TokKind::kIdentifier) {
      j += 2;
    }
    const std::string_view name = toks[j].text;
    if (name.substr(0, 4) == "try_") continue;  // discarded-status owns these
    if (j + 1 >= toks.size() || !is_punct(toks[j + 1], "(")) continue;
    const std::size_t close = matching_close(toks, j + 1);
    if (close + 1 >= toks.size() || !is_punct(toks[close + 1], ";")) continue;
    if (!ctx.index->returns_only_status(name)) continue;

    // Spell out where the Status-returning signature lives, so the finding
    // is checkable without grepping.
    std::string where;
    for (const FunctionDef& def : ctx.index->functions()) {
      if (def.returns_status_like && def.name == name) {
        where = " (" + def.path + ":" + std::to_string(def.line) + ")";
        break;
      }
    }
    out.push_back({"expected-flow", input.path, toks[j].line,
                   "result of " + std::string(name) + "()" + where +
                       " is a Status/Expected and is discarded; check it, "
                       "propagate it, or cast to void with a rationale"});
    i = close;
  }
}

}  // namespace

const std::vector<SemanticRule>& semantic_rule_catalogue() {
  static const std::vector<SemanticRule> kRules = {
      {"cancel-poll",
       "tile/chunk loop in src/core that never reaches a CancelToken poll",
       check_cancel_poll},
      {"scope-pairing",
       "manual begin/end or lock/unlock bypassing the RAII scope types",
       check_scope_pairing},
      {"expected-flow",
       "statement-level call discarding a Status/Expected (cross-TU, via the index)",
       check_expected_flow},
  };
  return kRules;
}

}  // namespace tsg::lint
