// SARIF 2.1.0 emission — the interchange format GitHub code scanning (and
// most SARIF viewers) ingest. One run, one driver ("tsg-lint"), the full
// rule table from all_rule_info() (so rules with zero findings still show
// up in the tool metadata), and one result per diagnostic with a physical
// location. Everything is level "error": tsg-lint has no warning tier —
// a finding either fails the build or is suppressed/baselined with a
// rationale.
#pragma once

#include <iosfwd>
#include <vector>

#include "tsg_lint/project.h"

namespace tsg::lint {

/// Write the diagnostics as a SARIF 2.1.0 log. `rules` is the full rule
/// table (all_rule_info()); every diagnostic's rule must appear in it.
void write_sarif(const std::vector<Diagnostic>& diagnostics,
                 const std::vector<RuleInfo>& rules, std::ostream& os);

}  // namespace tsg::lint
