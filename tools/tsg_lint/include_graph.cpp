#include "tsg_lint/include_graph.h"

#include <algorithm>
#include <ostream>
#include <set>
#include <string_view>

namespace tsg::lint {

namespace {

/// The declared layer spec. New modules must be added here (and to the
/// docs table in docs/STATIC_ANALYSIS.md) before they can land — an
/// unlisted module under src/ is a layer-violation by construction.
struct LayerEntry {
  std::string_view module;
  int layer;
};
constexpr LayerEntry kLayers[] = {
    // src/common/contracts.h is macro-only (thread-safety annotation
    // wrappers) and is the one header both obs and common may share; the
    // checker verifies it includes nothing by pinning it to layer 0.
    {"contracts", 0},
    // obs below common is deliberate (PR 3): parallel_for and MemoryTracker
    // are instrumented, so common includes obs, never the reverse.
    {"obs", 1},
    {"common", 2},
    {"matrix", 3},
    {"core", 4},
    {"csb", 5},
    {"gen", 5},
    {"graph", 5},
    {"solver", 5},
    {"baselines", 5},
    {"chaos", 6},
    {"service", 7},
    {"harness", 8},
    // Unconstrained consumers: anything under these roots may include any
    // library layer (but still participates in cycle detection).
    {"tools", kAppLayer},
    {"bench", kAppLayer},
    {"tests", kAppLayer},
    {"examples", kAppLayer},
    // Standalone: the linter must build when the library does not, so it
    // may include only itself (enforced as a layer rule below).
    {"tsg_lint", kAppLayer},
};

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// First path segment after `prefix` ("src/core/step1.cpp", "src/" -> "core").
std::string segment_after(const std::string& path, std::size_t at) {
  const std::size_t slash = path.find('/', at);
  if (slash == std::string::npos) return path.substr(at);
  return path.substr(at, slash - at);
}

}  // namespace

std::string module_of(const std::string& path) {
  if (path == "src/common/contracts.h") return "contracts";
  if (starts_with(path, "src/")) return segment_after(path, 4);
  if (starts_with(path, "tools/tsg_lint/")) return "tsg_lint";
  if (starts_with(path, "tools/")) return "tools";
  if (starts_with(path, "bench/")) return "bench";
  if (starts_with(path, "tests/")) return "tests";
  if (starts_with(path, "examples/")) return "examples";
  return "";
}

int layer_of(const std::string& module) {
  for (const LayerEntry& e : kLayers) {
    if (e.module == module) return e.layer;
  }
  return -1;
}

IncludeGraph build_include_graph(const std::vector<FileInput>& files) {
  IncludeGraph graph;
  graph.nodes.reserve(files.size());
  for (const FileInput& f : files) {
    IncludeNode node;
    node.path = f.path;
    node.module = module_of(f.path);
    node.layer = layer_of(node.module);
    graph.index_of.emplace(f.path, static_cast<int>(graph.nodes.size()));
    graph.nodes.push_back(std::move(node));
  }

  auto dir_of = [](const std::string& path) {
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
  };

  for (std::size_t f = 0; f < files.size(); ++f) {
    const std::string& content = files[f].content;
    int line = 1;
    std::size_t pos = 0;
    while (pos < content.size()) {
      std::size_t eol = content.find('\n', pos);
      if (eol == std::string::npos) eol = content.size();
      std::string_view l(content.data() + pos, eol - pos);
      // Trim leading whitespace, expect `#`, optional space, `include "..."`.
      std::size_t a = l.find_first_not_of(" \t");
      if (a != std::string_view::npos && l[a] == '#') {
        std::size_t b = l.find_first_not_of(" \t", a + 1);
        if (b != std::string_view::npos && l.substr(b, 7) == "include") {
          const std::size_t q1 = l.find('"', b + 7);
          if (q1 != std::string_view::npos) {
            const std::size_t q2 = l.find('"', q1 + 1);
            if (q2 != std::string_view::npos) {
              const std::string inc(l.substr(q1 + 1, q2 - q1 - 1));
              // Resolution order: project roots, then includer-relative.
              const std::string candidates[] = {
                  "src/" + inc, "tools/" + inc, "tests/" + inc, "bench/" + inc,
                  dir_of(files[f].path) + inc};
              for (const std::string& cand : candidates) {
                const auto it = graph.index_of.find(cand);
                if (it != graph.index_of.end()) {
                  graph.nodes[f].edges.push_back({it->second, line});
                  break;
                }
              }
            }
          }
        }
      }
      pos = eol + 1;
      ++line;
    }
  }
  return graph;
}

std::map<std::string, std::map<std::string, int>> IncludeGraph::module_edges() const {
  std::map<std::string, std::map<std::string, int>> edges;
  for (const IncludeNode& node : nodes) {
    edges[node.module];  // ensure isolated modules still appear
    for (const IncludeEdge& e : node.edges) {
      const std::string& to = nodes[static_cast<std::size_t>(e.to)].module;
      if (to != node.module) ++edges[node.module][to];
    }
  }
  return edges;
}

void check_include_graph(const IncludeGraph& graph, std::vector<Diagnostic>& out) {
  // --- Layer conformance, per file edge (so the finding lands on the
  // #include line that introduced it).
  for (const IncludeNode& node : graph.nodes) {
    if (node.module.empty()) continue;  // outside every known root: unconstrained
    if (node.layer < 0) {
      out.push_back({"layer-violation", node.path, 1,
                     "module '" + node.module +
                         "' is not in the declared layer spec; add it to "
                         "kLayers in tools/tsg_lint/include_graph.cpp and to "
                         "the table in docs/STATIC_ANALYSIS.md"});
      continue;
    }
    for (const IncludeEdge& e : node.edges) {
      const IncludeNode& to = graph.nodes[static_cast<std::size_t>(e.to)];
      if (to.module == node.module) continue;
      if (node.module == "tsg_lint") {
        // Standalone module: it may include nothing project-local outside
        // itself. (Inbound edges are fine — tests drive the lib; a library
        // module including it would trip the ordinary inversion check.)
        out.push_back({"layer-violation", node.path, e.line,
                       "tools/tsg_lint is standalone (it must lint a tree "
                       "whose library does not build): '" + node.path +
                           "' may not include '" + to.path + "'"});
        continue;
      }
      if (node.layer == kAppLayer) continue;  // consumers may include anything
      if (to.layer >= 0 && to.layer < node.layer) continue;
      out.push_back({"layer-violation", node.path, e.line,
                     "layer inversion: module '" + node.module + "' (layer " +
                         std::to_string(node.layer) + ") includes '" + to.path +
                         "' of module '" + to.module + "' (layer " +
                         std::to_string(to.layer) +
                         "); the declared DAG is contracts -> obs -> common -> "
                         "matrix -> core -> csb/gen/graph/solver/baselines -> "
                         "chaos -> service -> harness -> apps"});
    }
  }

  // --- File-level cycles: iterative 3-colour DFS; report the cycle once,
  // at the back edge, spelling the full path.
  enum class Colour { kWhite, kGrey, kBlack };
  std::vector<Colour> colour(graph.nodes.size(), Colour::kWhite);
  std::vector<int> stack_path;
  std::set<std::string> reported;

  struct Frame {
    int node;
    std::size_t next_edge;
  };
  for (std::size_t root = 0; root < graph.nodes.size(); ++root) {
    if (colour[root] != Colour::kWhite) continue;
    std::vector<Frame> stack;
    stack.push_back({static_cast<int>(root), 0});
    colour[root] = Colour::kGrey;
    stack_path.push_back(static_cast<int>(root));
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const IncludeNode& node = graph.nodes[static_cast<std::size_t>(frame.node)];
      if (frame.next_edge < node.edges.size()) {
        const IncludeEdge& e = node.edges[frame.next_edge++];
        const std::size_t to = static_cast<std::size_t>(e.to);
        if (colour[to] == Colour::kWhite) {
          colour[to] = Colour::kGrey;
          stack.push_back({e.to, 0});
          stack_path.push_back(e.to);
        } else if (colour[to] == Colour::kGrey) {
          // Back edge: the cycle is stack_path from `to` onwards.
          std::string cycle;
          bool in_cycle = false;
          for (const int p : stack_path) {
            if (p == e.to) in_cycle = true;
            if (!in_cycle) continue;
            cycle += graph.nodes[static_cast<std::size_t>(p)].path;
            cycle += " -> ";
          }
          cycle += graph.nodes[to].path;
          if (reported.insert(cycle).second) {
            out.push_back({"include-cycle", node.path, e.line,
                           "#include cycle: " + cycle});
          }
        }
      } else {
        colour[static_cast<std::size_t>(frame.node)] = Colour::kBlack;
        stack.pop_back();
        stack_path.pop_back();
      }
    }
  }
}

void write_graph_dot(const IncludeGraph& graph, std::ostream& os) {
  const auto edges = graph.module_edges();
  // Group modules by layer for rank hints.
  std::map<int, std::vector<std::string>> by_layer;
  for (const auto& [module, _] : edges) by_layer[layer_of(module)].push_back(module);

  os << "// Module include DAG, generated by `tsg_lint --dot=...`.\n"
     << "// Layers: low at the bottom; an edge points at what it includes.\n"
     << "digraph tsg_modules {\n  rankdir=BT;\n  node [shape=box, fontsize=11];\n";
  for (const auto& [layer, modules] : by_layer) {
    os << "  { rank=same;";
    for (const std::string& m : modules) os << " \"" << m << "\";";
    os << " }  // layer " << layer << "\n";
  }
  for (const auto& [from, tos] : edges) {
    for (const auto& [to, count] : tos) {
      os << "  \"" << from << "\" -> \"" << to << "\" [label=\"" << count << "\"];\n";
    }
  }
  os << "}\n";
}

void write_graph_json(const IncludeGraph& graph, std::ostream& os) {
  os << "{\n  \"nodes\": [\n";
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    const IncludeNode& node = graph.nodes[i];
    os << "    {\"path\": \"" << node.path << "\", \"module\": \"" << node.module
       << "\", \"layer\": " << node.layer << "}" << (i + 1 < graph.nodes.size() ? "," : "")
       << "\n";
  }
  os << "  ],\n  \"edges\": [\n";
  std::vector<std::string> lines;
  for (const IncludeNode& node : graph.nodes) {
    for (const IncludeEdge& e : node.edges) {
      lines.push_back("    {\"from\": \"" + node.path + "\", \"to\": \"" +
                      graph.nodes[static_cast<std::size_t>(e.to)].path +
                      "\", \"line\": " + std::to_string(e.line) + "}");
    }
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    os << lines[i] << (i + 1 < lines.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace tsg::lint
