#include "tsg_lint/lexer.h"

#include <cctype>

namespace tsg::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// The multi-character punctuators the rules must see whole — mostly so a
/// compound token is never misread as containing `*`, `=`, `<` … (e.g.
/// `*=` is not a size multiply, `->` is not a dereference).
constexpr const char* kPunct3[] = {"<<=", ">>=", "->*", "...", "<=>"};
constexpr const char* kPunct2[] = {"::", "->", "++", "--", "<<", ">>", "<=", ">=",
                                   "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
                                   "%=", "&=", "|=", "^=", ".*", "##"};

/// Valid characters of a raw-string delimiter (d-char-seq): anything but
/// parentheses, backslash, quotes, and whitespace, at most 16 characters.
/// Scanning must stop on an invalid character instead of swallowing the
/// rest of the file when an `R"` turns out not to open a raw string.
bool raw_delim_char(char c) {
  return c != '(' && c != ')' && c != '\\' && c != '"' && c != ' ' && c != '\t' &&
         c != '\n' && c != '\r' && c != '\v' && c != '\f';
}

/// Parse a `tsg-lint:` directive out of one comment body; registers the
/// allows it finds. `line` is the comment's starting line.
void parse_directive(std::string_view comment, int line, LexedFile& out) {
  const std::string_view tag = "tsg-lint:";
  const std::size_t at = comment.find(tag);
  if (at == std::string_view::npos) return;
  std::string_view rest = comment.substr(at + tag.size());

  auto skip_ws = [&] {
    while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t')) {
      rest.remove_prefix(1);
    }
  };
  skip_ws();

  bool whole_file = false;
  const std::string_view allow_file = "allow-file";
  const std::string_view allow = "allow";
  if (rest.substr(0, allow_file.size()) == allow_file) {
    whole_file = true;
    rest.remove_prefix(allow_file.size());
  } else if (rest.substr(0, allow.size()) == allow) {
    rest.remove_prefix(allow.size());
  } else {
    return;  // unknown directive; lexing must not hard-fail on comments
  }
  skip_ws();
  if (rest.empty() || rest.front() != '(') return;
  rest.remove_prefix(1);
  const std::size_t close = rest.find(')');
  if (close == std::string_view::npos) return;
  std::string_view list = rest.substr(0, close);

  // Split on commas; rule names are [a-z0-9-] (or the wildcard "*").
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string_view::npos) comma = list.size();
    std::string_view name = list.substr(pos, comma - pos);
    while (!name.empty() && (name.front() == ' ' || name.front() == '\t')) {
      name.remove_prefix(1);
    }
    while (!name.empty() && (name.back() == ' ' || name.back() == '\t')) {
      name.remove_suffix(1);
    }
    if (!name.empty()) {
      if (whole_file) {
        out.file_allows.insert(std::string(name));
      } else {
        // A comment above a statement and a trailing comment on the same
        // statement are both natural placements: register both lines.
        out.line_allows[line].insert(std::string(name));
        out.line_allows[line + 1].insert(std::string(name));
      }
    }
    pos = comma + 1;
  }
}

}  // namespace

LexedFile lex(std::string_view src) {
  LexedFile out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;

  auto advance_line_counter = [&](char c) {
    if (c == '\n') ++line;
  };

  while (i < n) {
    const char c = src[i];

    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f') {
      advance_line_counter(c);
      ++i;
      continue;
    }

    // Preprocessor directive: `#` as the first non-whitespace of a line.
    // Skipped wholesale (with backslash continuations) — macro *definitions*
    // must not count as uses for pairing/raw-alloc rules.
    if (c == '#') {
      bool at_line_start = true;
      for (std::size_t k = i; k > 0; --k) {
        const char p = src[k - 1];
        if (p == '\n') break;
        if (p != ' ' && p != '\t') {
          at_line_start = false;
          break;
        }
      }
      if (at_line_start) {
        while (i < n) {
          if (src[i] == '\n') {
            // Continuation if the newline is escaped (ignoring trailing \r).
            std::size_t b = i;
            while (b > 0 && src[b - 1] == '\r') --b;
            const bool continued = b > 0 && src[b - 1] == '\\';
            ++line;
            ++i;
            if (!continued) break;
            continue;
          }
          ++i;
        }
        continue;
      }
      // A '#' mid-line is the (rare) stringize operator context; treat as punct.
      out.tokens.push_back({TokKind::kPunct, src.substr(i, 1), line});
      ++i;
      continue;
    }

    // Line comment. A backslash before the newline splices the next physical
    // line into the comment (translation phase 2 runs before comment
    // removal), so code on the spliced line must not be tokenized.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i;
      const int start_line = line;
      while (i < n) {
        if (src[i] == '\n') {
          std::size_t b = i;
          while (b > start && src[b - 1] == '\r') --b;
          const bool continued = b > start && src[b - 1] == '\\';
          if (!continued) break;
          ++line;
          ++i;
          continue;
        }
        ++i;
      }
      parse_directive(src.substr(start, i - start), start_line, out);
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i;
      const int start_line = line;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        advance_line_counter(src[i]);
        ++i;
      }
      i = i + 2 <= n ? i + 2 : n;
      parse_directive(src.substr(start, i - start), start_line, out);
      continue;
    }

    // Identifier (possibly a literal prefix).
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) ++j;
      std::string_view word = src.substr(i, j - i);

      // Raw string literal: R"delim( ... )delim" with optional encoding
      // prefix. The delimiter scan is bounded to valid d-chars (≤ 16, no
      // whitespace/quotes/backslash): on anything else this is not a raw
      // string after all and the word must fall through as an identifier
      // instead of the scan swallowing the rest of the buffer.
      const bool raw_prefix =
          word == "R" || word == "u8R" || word == "uR" || word == "UR" || word == "LR";
      if (raw_prefix && j < n && src[j] == '"') {
        std::size_t k = j + 1;
        std::string delim;
        while (k < n && delim.size() <= 16 && raw_delim_char(src[k])) {
          delim.push_back(src[k++]);
        }
        if (k < n && src[k] == '(' && delim.size() <= 16) {
          const std::string closer = ")" + delim + "\"";
          const std::size_t end = src.find(closer, k);
          const std::size_t stop = end == std::string_view::npos ? n : end + closer.size();
          out.tokens.push_back({TokKind::kString, src.substr(i, stop - i), line});
          for (std::size_t t = i; t < stop; ++t) advance_line_counter(src[t]);
          i = stop;
          continue;
        }
        // Malformed delimiter: emit the word; the quote re-enters the loop
        // below and is scanned as an ordinary string literal.
        out.tokens.push_back({TokKind::kIdentifier, word, line});
        i = j;
        continue;
      }
      // Encoding-prefixed ordinary literal: u8"...", L'...', ...
      const bool enc_prefix = word == "u8" || word == "u" || word == "U" || word == "L";
      if (enc_prefix && j < n && (src[j] == '"' || src[j] == '\'')) {
        i = j;  // fall through to the literal scanners below
      } else {
        out.tokens.push_back({TokKind::kIdentifier, word, line});
        i = j;
        continue;
      }
    }

    // String / char literal (escapes honoured; content never tokenized).
    if (src[i] == '"' || src[i] == '\'') {
      const char quote = src[i];
      const std::size_t start = i;
      const int start_line = line;
      ++i;
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        if (src[i] == quote) {
          ++i;
          break;
        }
        advance_line_counter(src[i]);
        ++i;
      }
      out.tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                            src.substr(start, i - start), start_line});
      continue;
    }

    // Number (handles 0x1F, 1'000'000, 1.5e-3, .5f). A digit separator is
    // only part of the number when an alphanumeric follows: `1'000'000`
    // continues, but a quote after the last digit opens a char literal and
    // must never be swallowed into the number token.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i + 1;
      while (j < n) {
        const char d = src[j];
        if (ident_char(d) || d == '.') {
          ++j;
          continue;
        }
        if (d == '\'' && j + 1 < n &&
            std::isalnum(static_cast<unsigned char>(src[j + 1]))) {
          ++j;
          continue;
        }
        // Exponent sign: 1e+3 / 0x1p-4.
        if ((d == '+' || d == '-') && (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                                       src[j - 1] == 'p' || src[j - 1] == 'P')) {
          ++j;
          continue;
        }
        break;
      }
      out.tokens.push_back({TokKind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }

    // Punctuation, longest match first.
    bool matched = false;
    if (i + 3 <= n) {
      for (const char* p : kPunct3) {
        if (src.substr(i, 3) == p) {
          out.tokens.push_back({TokKind::kPunct, src.substr(i, 3), line});
          i += 3;
          matched = true;
          break;
        }
      }
    }
    if (!matched && i + 2 <= n) {
      for (const char* p : kPunct2) {
        if (src.substr(i, 2) == p) {
          out.tokens.push_back({TokKind::kPunct, src.substr(i, 2), line});
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      out.tokens.push_back({TokKind::kPunct, src.substr(i, 1), line});
      ++i;
    }
  }
  return out;
}

bool is_suppressed(const LexedFile& file, const std::string& rule, int line) {
  if (file.file_allows.count("*") > 0 || file.file_allows.count(rule) > 0) return true;
  const auto it = file.line_allows.find(line);
  if (it == file.line_allows.end()) return false;
  return it->second.count("*") > 0 || it->second.count(rule) > 0;
}

}  // namespace tsg::lint
