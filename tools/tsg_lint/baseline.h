// Finding baseline: the ratchet that lets a new rule land with pre-existing
// findings grandfathered instead of blocking the tree, while still failing
// CI the moment anybody adds a new one.
//
// The committed file (lint_baseline.json) records a count budget per
// (rule, path) — deliberately not per line, so ordinary edits that shift
// line numbers do not invalidate the baseline. Diff semantics: for each
// (rule, path), the first `count` findings (by line) are grandfathered and
// everything beyond the budget is reported. A budget larger than the actual
// finding count is also reported (stale entry — ratchet down by running
// --write-baseline).
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tsg_lint/lint.h"

namespace tsg::lint {

struct Baseline {
  /// (rule, path) -> grandfathered finding count.
  std::map<std::pair<std::string, std::string>, int> entries;
};

/// Parse a baseline file. Returns false (with `error` set) on malformed
/// input — a broken baseline must fail the build, not silently allow
/// everything.
bool load_baseline(const std::string& text, Baseline& out, std::string& error);

/// Write the diagnostics as a baseline (sorted, stable output for diffs).
void write_baseline(const std::vector<Diagnostic>& diagnostics, std::ostream& os);

/// Result of diffing findings against a baseline.
struct BaselineDiff {
  std::vector<Diagnostic> fresh;  ///< findings beyond the per-(rule,path) budget
  int grandfathered = 0;          ///< findings absorbed by the baseline
  /// Entries whose budget exceeds the live finding count — the baseline is
  /// stale and should be regenerated (formatted "rule path: N > M").
  std::vector<std::string> stale;
};

BaselineDiff diff_baseline(const std::vector<Diagnostic>& diagnostics,
                           const Baseline& baseline);

}  // namespace tsg::lint
