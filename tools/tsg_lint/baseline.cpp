#include "tsg_lint/baseline.h"

#include <algorithm>
#include <cctype>
#include <ostream>

namespace tsg::lint {

namespace {

/// Minimal JSON reader for the baseline's fixed shape. Strict enough that a
/// hand-mangled baseline fails loudly; supports exactly what write_baseline
/// emits (objects, arrays, strings with basic escapes, integers).
class Reader {
 public:
  explicit Reader(const std::string& text) : s_(text) {}

  bool parse(Baseline& out, std::string& error) {
    skip_ws();
    if (!expect('{')) return fail(error, "expected '{'");
    bool saw_entries = false;
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return fail(error, "expected object key");
      skip_ws();
      if (!expect(':')) return fail(error, "expected ':'");
      skip_ws();
      if (key == "entries") {
        if (!entries(out, error)) return false;
        saw_entries = true;
      } else if (!skip_value()) {
        return fail(error, "malformed value for \"" + key + "\"");
      }
      skip_ws();
      if (expect(',')) continue;
      if (expect('}')) break;
      return fail(error, "expected ',' or '}'");
    }
    skip_ws();
    if (pos_ != s_.size()) return fail(error, "trailing content");
    if (!saw_entries) return fail(error, "missing \"entries\" array");
    return true;
  }

 private:
  bool entries(Baseline& out, std::string& error) {
    if (!expect('[')) return fail(error, "\"entries\" must be an array");
    skip_ws();
    if (expect(']')) return true;
    while (true) {
      skip_ws();
      if (!expect('{')) return fail(error, "baseline entry must be an object");
      std::string rule, path;
      int count = -1;
      while (true) {
        skip_ws();
        std::string key;
        if (!string(key)) return fail(error, "expected entry key");
        skip_ws();
        if (!expect(':')) return fail(error, "expected ':'");
        skip_ws();
        if (key == "rule") {
          if (!string(rule)) return fail(error, "\"rule\" must be a string");
        } else if (key == "path") {
          if (!string(path)) return fail(error, "\"path\" must be a string");
        } else if (key == "count") {
          if (!integer(count)) return fail(error, "\"count\" must be an integer");
        } else if (!skip_value()) {
          return fail(error, "malformed entry value");
        }
        skip_ws();
        if (expect(',')) continue;
        if (expect('}')) break;
        return fail(error, "expected ',' or '}' in entry");
      }
      if (rule.empty() || path.empty() || count < 0) {
        return fail(error, "entry needs \"rule\", \"path\", and a non-negative \"count\"");
      }
      out.entries[{rule, path}] += count;
      skip_ws();
      if (expect(',')) continue;
      if (expect(']')) return true;
      return fail(error, "expected ',' or ']' after entry");
    }
  }

  bool skip_value() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '"') {
      std::string ignored;
      return string(ignored);
    }
    if (c == '{' || c == '[') {
      const char open = c;
      const char close = c == '{' ? '}' : ']';
      int depth = 0;
      bool in_string = false;
      for (; pos_ < s_.size(); ++pos_) {
        const char d = s_[pos_];
        if (in_string) {
          if (d == '\\') ++pos_;
          else if (d == '"') in_string = false;
          continue;
        }
        if (d == '"') in_string = true;
        if (d == open) ++depth;
        if (d == close && --depth == 0) {
          ++pos_;
          return true;
        }
      }
      return false;
    }
    // number / literal
    const std::size_t start = pos_;
    while (pos_ < s_.size() && (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
                                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool string(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) {
        const char e = s_[pos_ + 1];
        out += e == 'n' ? '\n' : e == 't' ? '\t' : e;
        pos_ += 2;
        continue;
      }
      out += s_[pos_++];
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool integer(int& out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (pos_ == start) return false;
    out = std::stoi(s_.substr(start, pos_ - start));
    return true;
  }

  bool expect(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool fail(std::string& error, const std::string& what) {
    error = "baseline parse error near offset " + std::to_string(pos_) + ": " + what;
    return false;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

bool load_baseline(const std::string& text, Baseline& out, std::string& error) {
  out.entries.clear();
  return Reader(text).parse(out, error);
}

void write_baseline(const std::vector<Diagnostic>& diagnostics, std::ostream& os) {
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const Diagnostic& d : diagnostics) ++counts[{d.rule, d.path}];
  os << "{\n  \"version\": 1,\n  \"tool\": \"tsg-lint\",\n  \"entries\": [";
  bool first = true;
  for (const auto& [key, count] : counts) {
    os << (first ? "" : ",") << "\n    {\"rule\": \"" << escape(key.first)
       << "\", \"path\": \"" << escape(key.second) << "\", \"count\": " << count << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
}

BaselineDiff diff_baseline(const std::vector<Diagnostic>& diagnostics,
                           const Baseline& baseline) {
  BaselineDiff diff;
  // Group by (rule, path); diagnostics arrive sorted by (path, line, rule)
  // from lint_project, so within a group line order is preserved and "the
  // first `count` findings" is well defined.
  std::map<std::pair<std::string, std::string>, std::vector<const Diagnostic*>> groups;
  for (const Diagnostic& d : diagnostics) groups[{d.rule, d.path}].push_back(&d);

  for (auto& [key, found] : groups) {
    std::stable_sort(found.begin(), found.end(),
                     [](const Diagnostic* a, const Diagnostic* b) { return a->line < b->line; });
    const auto it = baseline.entries.find(key);
    const int budget = it == baseline.entries.end() ? 0 : it->second;
    for (std::size_t i = 0; i < found.size(); ++i) {
      if (static_cast<int>(i) < budget) {
        ++diff.grandfathered;
      } else {
        diff.fresh.push_back(*found[i]);
      }
    }
  }
  for (const auto& [key, budget] : baseline.entries) {
    const auto it = groups.find(key);
    const int live = it == groups.end() ? 0 : static_cast<int>(it->second.size());
    if (budget > live) {
      diff.stale.push_back(key.first + " " + key.second + ": baseline allows " +
                           std::to_string(budget) + " but only " + std::to_string(live) +
                           " remain; regenerate with --write-baseline");
    }
  }
  return diff;
}

}  // namespace tsg::lint
