#include "tsg_lint/sarif.h"

#include <cstdio>
#include <map>
#include <ostream>
#include <string>

namespace tsg::lint {

namespace {

/// JSON string escaping per RFC 8259: quotes, backslash, control characters.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void write_sarif(const std::vector<Diagnostic>& diagnostics,
                 const std::vector<RuleInfo>& rules, std::ostream& os) {
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rules.size(); ++i) rule_index[rules[i].name] = i;

  os << "{\n"
     << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
        "master/Schemata/sarif-schema-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"tsg-lint\",\n"
     << "          \"informationUri\": \"docs/STATIC_ANALYSIS.md\",\n"
     << "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << "            {\"id\": \"" << json_escape(rules[i].name)
       << "\", \"shortDescription\": {\"text\": \"" << json_escape(rules[i].summary)
       << "\"}}" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    const auto it = rule_index.find(d.rule);
    os << "        {\n"
       << "          \"ruleId\": \"" << json_escape(d.rule) << "\",\n";
    if (it != rule_index.end()) {
      os << "          \"ruleIndex\": " << it->second << ",\n";
    }
    os << "          \"level\": \"error\",\n"
       << "          \"message\": {\"text\": \"" << json_escape(d.message) << "\"},\n"
       << "          \"locations\": [\n"
       << "            {\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
       << json_escape(d.path) << "\"}, \"region\": {\"startLine\": "
       << (d.line > 0 ? d.line : 1) << "}}}\n"
       << "          ]\n"
       << "        }" << (i + 1 < diagnostics.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
}

}  // namespace tsg::lint
