// Lexer of the tsg-lint static-analysis pass.
//
// A deliberately small C++ tokenizer — no libclang, no preprocessor, no
// semantic analysis. It produces exactly what lexical invariant rules need:
//
//   * a token stream (identifiers, literals, punctuation) with line
//     numbers, where comments, preprocessor directives, and the *contents*
//     of string/char literals can never be mistaken for code (test
//     fixtures embed violation snippets in raw strings; those must not
//     fire);
//   * the suppression directives found in comments:
//         // tsg-lint: allow(rule-a, rule-b)   — this line and the next
//         // tsg-lint: allow-file(rule-a)      — the whole file
//     `allow(*)` / `allow-file(*)` silence every rule.
//
// What it does NOT do: macro expansion, #include following, template
// instantiation. Rules are written against the spelled source, which is
// the invariant the project actually reviews for.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace tsg::lint {

enum class TokKind {
  kIdentifier,  ///< identifiers and keywords (rules match by spelling)
  kNumber,
  kString,  ///< text includes prefixes/quotes trimmed to the literal body
  kChar,
  kPunct,  ///< one operator or punctuator per token (multi-char kept whole)
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string_view text;  ///< view into the lexed buffer
  int line = 0;           ///< 1-based
};

struct LexedFile {
  std::vector<Token> tokens;
  /// line -> rules allowed on that line (already expanded: a comment on
  /// line L registers L and L+1). "*" means every rule.
  std::map<int, std::set<std::string, std::less<>>> line_allows;
  /// rules allowed for the whole file; "*" means every rule.
  std::set<std::string, std::less<>> file_allows;
};

/// Tokenize one buffer. The returned views point into `content`, which must
/// outlive the LexedFile.
LexedFile lex(std::string_view content);

/// True when the line/file suppressions of `file` silence `rule` at `line`.
bool is_suppressed(const LexedFile& file, const std::string& rule, int line);

}  // namespace tsg::lint
