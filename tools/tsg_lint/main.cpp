// tsg-lint CLI: walk the given files/directories and report violations of
// the project's lexical invariants. See docs/STATIC_ANALYSIS.md.
//
// Usage:
//   tsg_lint [--only=rule1,rule2] <path>...   lint files / directory trees
//   tsg_lint --list                           print the rule catalogue
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tsg_lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx" || ext == ".cu" || ext == ".cuh";
}

bool skip_directory(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.empty() || name.front() == '.' || name.rfind("build", 0) == 0 ||
         name == "third_party";
}

/// Collect lintable files under `root` (or `root` itself when it is a file).
bool collect(const fs::path& root, std::vector<fs::path>& out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    out.push_back(root);
    return true;
  }
  if (!fs::is_directory(root, ec)) {
    std::cerr << "tsg-lint: no such file or directory: " << root.string() << "\n";
    return false;
  }
  fs::recursive_directory_iterator it(root, fs::directory_options::skip_permission_denied, ec);
  if (ec) {
    std::cerr << "tsg-lint: cannot open " << root.string() << ": " << ec.message() << "\n";
    return false;
  }
  for (const fs::directory_entry& entry : it) {
    if (entry.is_directory(ec)) {
      if (skip_directory(entry.path())) it.disable_recursion_pending();
      continue;
    }
    if (entry.is_regular_file(ec) && lintable_extension(entry.path())) {
      out.push_back(entry.path());
    }
  }
  return true;
}

void print_usage() {
  std::cout << "usage: tsg_lint [--only=rule1,rule2] <file-or-dir>...\n"
               "       tsg_lint --list\n\n"
               "Suppress a finding with a comment on (or right above) the line:\n"
               "    // tsg-lint: allow(rule-name)   -- one line\n"
               "    // tsg-lint: allow-file(rule-name)   -- whole file\n";
}

}  // namespace

int main(int argc, char** argv) {
  tsg::lint::Options options;
  std::vector<fs::path> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg == "--list") {
      for (const tsg::lint::Rule& rule : tsg::lint::rule_catalogue()) {
        std::cout << rule.name << "\n    " << rule.summary << "\n";
      }
      return 0;
    }
    if (arg.rfind("--only=", 0) == 0) {
      std::stringstream list(arg.substr(7));
      std::string name;
      while (std::getline(list, name, ',')) {
        if (name.empty()) continue;
        const auto& rules = tsg::lint::rule_catalogue();
        const bool known = std::any_of(rules.begin(), rules.end(),
                                       [&](const auto& r) { return r.name == name; });
        if (!known) {
          std::cerr << "tsg-lint: unknown rule: " << name << " (see --list)\n";
          return 2;
        }
        options.only_rules.insert(name);
      }
      continue;
    }
    if (!arg.empty() && arg.front() == '-') {
      std::cerr << "tsg-lint: unknown option: " << arg << "\n";
      print_usage();
      return 2;
    }
    roots.emplace_back(arg);
  }

  if (roots.empty()) {
    print_usage();
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    if (!collect(root, files)) return 2;
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  tsg::lint::LintStats stats;
  int findings = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "tsg-lint: cannot read " << file.string() << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();

    // generic_string() so reports (and the path-scoped rules) see forward
    // slashes regardless of platform.
    const std::vector<tsg::lint::Diagnostic> diags =
        tsg::lint::lint_source(file.generic_string(), content, options, &stats);
    for (const tsg::lint::Diagnostic& d : diags) {
      std::cout << d.path << ":" << d.line << ": [" << d.rule << "] " << d.message
                << "\n";
      ++findings;
    }
  }

  std::cerr << "tsg-lint: " << stats.files << " files, " << findings << " finding"
            << (findings == 1 ? "" : "s") << ", " << stats.suppressed << " suppressed\n";
  return findings == 0 ? 0 : 1;
}
