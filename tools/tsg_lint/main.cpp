// tsg-lint CLI: project-wide semantic lint of the tree. See
// docs/STATIC_ANALYSIS.md for the rule catalogue and the layer spec.
//
// Usage:
//   tsg_lint [options] <file-or-dir>...
//   tsg_lint --list
//
// Options:
//   --only=rule1,rule2    run a subset of the rules
//   --jobs=N              worker threads (default: hardware concurrency)
//   --sarif=PATH          also write findings as SARIF 2.1.0
//   --dot=PATH            write the module include DAG as DOT
//   --graph-json=PATH     write the file-level include graph as JSON
//   --baseline=PATH       baseline file (default lint_baseline.json when
//                         --diff-baseline/--write-baseline is given)
//   --diff-baseline       report only findings beyond the baseline budget
//   --write-baseline      regenerate the baseline from the live findings
//
// Exit codes: 0 clean, 1 findings (after baseline diff, when active),
// 2 usage or I/O error. All paths are reported repo-relative as given —
// run from the source root so the layer spec keys match.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tsg_lint/baseline.h"
#include "tsg_lint/include_graph.h"
#include "tsg_lint/project.h"
#include "tsg_lint/sarif.h"

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx" || ext == ".cu" || ext == ".cuh";
}

bool skip_directory(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.empty() || name.front() == '.' || name.rfind("build", 0) == 0 ||
         name == "third_party";
}

/// Collect lintable files under `root` (or `root` itself when it is a file).
bool collect(const fs::path& root, std::vector<fs::path>& out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    out.push_back(root);
    return true;
  }
  if (!fs::is_directory(root, ec)) {
    std::cerr << "tsg-lint: no such file or directory: " << root.string() << "\n";
    return false;
  }
  fs::recursive_directory_iterator it(root, fs::directory_options::skip_permission_denied, ec);
  if (ec) {
    std::cerr << "tsg-lint: cannot open " << root.string() << ": " << ec.message() << "\n";
    return false;
  }
  for (const fs::directory_entry& entry : it) {
    if (entry.is_directory(ec)) {
      if (skip_directory(entry.path())) it.disable_recursion_pending();
      continue;
    }
    if (entry.is_regular_file(ec) && lintable_extension(entry.path())) {
      out.push_back(entry.path());
    }
  }
  return true;
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

bool write_file(const std::string& path, const std::function<void(std::ostream&)>& emit) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "tsg-lint: cannot write " << path << "\n";
    return false;
  }
  emit(out);
  return static_cast<bool>(out);
}

void print_usage() {
  std::cout
      << "usage: tsg_lint [options] <file-or-dir>...\n"
         "       tsg_lint --list\n\n"
         "options:\n"
         "  --only=rule1,rule2   run a subset of the rules\n"
         "  --jobs=N             worker threads (default: hardware concurrency)\n"
         "  --sarif=PATH         also write findings as SARIF 2.1.0\n"
         "  --dot=PATH           write the module include DAG as DOT\n"
         "  --graph-json=PATH    write the file-level include graph as JSON\n"
         "  --baseline=PATH      baseline file (default lint_baseline.json)\n"
         "  --diff-baseline      report only findings beyond the baseline budget\n"
         "  --write-baseline     regenerate the baseline from the live findings\n\n"
         "Suppress a finding with a comment on (or right above) the line:\n"
         "    // tsg-lint: allow(rule-name)   -- one line\n"
         "    // tsg-lint: allow-file(rule-name)   -- whole file\n"
         "For #include findings only the line-above placement works.\n";
}

}  // namespace

int main(int argc, char** argv) {
  tsg::lint::Options options;
  std::vector<fs::path> roots;
  int jobs = 0;
  std::string sarif_path, dot_path, graph_json_path;
  std::string baseline_path = "lint_baseline.json";
  bool diff_baseline = false;
  bool write_baseline_out = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg == "--list") {
      for (const tsg::lint::RuleInfo& rule : tsg::lint::all_rule_info()) {
        std::cout << rule.name << "\n    " << rule.summary << "\n";
      }
      return 0;
    }
    if (arg.rfind("--only=", 0) == 0) {
      const std::vector<tsg::lint::RuleInfo> known_rules = tsg::lint::all_rule_info();
      std::stringstream list(arg.substr(7));
      std::string name;
      while (std::getline(list, name, ',')) {
        if (name.empty()) continue;
        const bool known =
            std::any_of(known_rules.begin(), known_rules.end(),
                        [&](const auto& r) { return r.name == name; });
        if (!known) {
          std::cerr << "tsg-lint: unknown rule: " << name << " (see --list)\n";
          return 2;
        }
        options.only_rules.insert(name);
      }
      continue;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(arg.c_str() + 7);
      if (jobs <= 0) {
        std::cerr << "tsg-lint: --jobs wants a positive integer\n";
        return 2;
      }
      continue;
    }
    if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
      continue;
    }
    if (arg.rfind("--dot=", 0) == 0) {
      dot_path = arg.substr(6);
      continue;
    }
    if (arg.rfind("--graph-json=", 0) == 0) {
      graph_json_path = arg.substr(13);
      continue;
    }
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
      continue;
    }
    if (arg == "--diff-baseline") {
      diff_baseline = true;
      continue;
    }
    if (arg == "--write-baseline") {
      write_baseline_out = true;
      continue;
    }
    if (!arg.empty() && arg.front() == '-') {
      std::cerr << "tsg-lint: unknown option: " << arg << "\n";
      print_usage();
      return 2;
    }
    roots.emplace_back(arg);
  }

  if (roots.empty()) {
    print_usage();
    return 2;
  }
  if (diff_baseline && write_baseline_out) {
    std::cerr << "tsg-lint: --diff-baseline and --write-baseline are exclusive\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    if (!collect(root, files)) return 2;
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // generic_string() so reports (and the path-keyed layer spec) see forward
  // slashes regardless of platform.
  std::vector<tsg::lint::FileInput> inputs;
  inputs.reserve(files.size());
  for (const fs::path& file : files) {
    tsg::lint::FileInput input;
    input.path = file.generic_string();
    if (!read_file(file, input.content)) {
      std::cerr << "tsg-lint: cannot read " << input.path << "\n";
      return 2;
    }
    inputs.push_back(std::move(input));
  }

  tsg::lint::ProjectResult result =
      tsg::lint::lint_project(std::move(inputs), options, jobs);

  if (!dot_path.empty() &&
      !write_file(dot_path, [&](std::ostream& os) { tsg::lint::write_graph_dot(result.graph, os); })) {
    return 2;
  }
  if (!graph_json_path.empty() &&
      !write_file(graph_json_path,
                  [&](std::ostream& os) { tsg::lint::write_graph_json(result.graph, os); })) {
    return 2;
  }
  if (!sarif_path.empty() &&
      !write_file(sarif_path, [&](std::ostream& os) {
        tsg::lint::write_sarif(result.diagnostics, tsg::lint::all_rule_info(), os);
      })) {
    return 2;
  }

  if (write_baseline_out) {
    if (!write_file(baseline_path, [&](std::ostream& os) {
          tsg::lint::write_baseline(result.diagnostics, os);
        })) {
      return 2;
    }
    std::cerr << "tsg-lint: wrote " << baseline_path << " (" << result.diagnostics.size()
              << " finding" << (result.diagnostics.size() == 1 ? "" : "s")
              << " grandfathered)\n";
    return 0;
  }

  int grandfathered = 0;
  std::vector<tsg::lint::Diagnostic> to_report = std::move(result.diagnostics);
  if (diff_baseline) {
    std::string text, error;
    tsg::lint::Baseline baseline;
    if (!read_file(baseline_path, text)) {
      std::cerr << "tsg-lint: cannot read baseline " << baseline_path
                << " (generate one with --write-baseline)\n";
      return 2;
    }
    if (!tsg::lint::load_baseline(text, baseline, error)) {
      std::cerr << "tsg-lint: " << error << "\n";
      return 2;
    }
    tsg::lint::BaselineDiff diff = tsg::lint::diff_baseline(to_report, baseline);
    for (const std::string& stale : diff.stale) {
      std::cerr << "tsg-lint: stale baseline entry: " << stale << "\n";
    }
    grandfathered = diff.grandfathered;
    to_report = std::move(diff.fresh);
  }

  for (const tsg::lint::Diagnostic& d : to_report) {
    std::cout << d.path << ":" << d.line << ": [" << d.rule << "] " << d.message << "\n";
  }

  const int findings = static_cast<int>(to_report.size());
  std::cerr << "tsg-lint: " << result.stats.files << " files, " << findings << " finding"
            << (findings == 1 ? "" : "s") << ", " << result.stats.suppressed
            << " suppressed";
  if (diff_baseline) std::cerr << ", " << grandfathered << " baselined";
  std::cerr << "\n";
  return findings == 0 ? 0 : 1;
}
