#include "tsg_lint/project.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace tsg::lint {

namespace {

/// Names of the graph-pass rules, kept here so --only and --list agree with
/// what check_include_graph emits.
constexpr const char* kGraphRules[][2] = {
    {"include-cycle", "file-level #include cycle anywhere in the tree"},
    {"layer-violation",
     "an #include edge against the declared module layer DAG, or a module "
     "absent from the spec"},
};

bool rule_selected(const Options& options, const std::string& rule) {
  return options.only_rules.empty() || options.only_rules.count(rule) > 0;
}

/// Run `fn(i)` for i in [0, count) over `jobs` threads. Order of execution
/// is unspecified; `fn` must only touch slot i of any shared state.
void for_each_index(std::size_t count, int jobs, const std::function<void(std::size_t)>& fn) {
  unsigned n = jobs > 0 ? static_cast<unsigned>(jobs) : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  n = std::min<unsigned>(n, count == 0 ? 1 : static_cast<unsigned>(count));
  if (n <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (unsigned w = 0; w < n; ++w) {
    workers.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) fn(i);
    });
  }
  for (std::thread& t : workers) t.join();
}

}  // namespace

std::vector<RuleInfo> all_rule_info() {
  std::vector<RuleInfo> info;
  for (const Rule& r : rule_catalogue()) info.push_back({r.name, r.summary});
  for (const SemanticRule& r : semantic_rule_catalogue()) info.push_back({r.name, r.summary});
  for (const auto& g : kGraphRules) info.push_back({g[0], g[1]});
  return info;
}

ProjectResult lint_project(std::vector<FileInput> files, const Options& options, int jobs) {
  ProjectResult result;
  result.stats.files = static_cast<int>(files.size());

  // Pass 1a: lex everything (parallel — files are independent).
  std::vector<LexedFile> lexed(files.size());
  for_each_index(files.size(), jobs,
                 [&](std::size_t i) { lexed[i] = lex(files[i].content); });

  // Pass 1b: project structures (serial; both are cheap token walks).
  ProjectContext ctx;
  ctx.files = &files;
  ctx.lexed.reserve(files.size());
  std::vector<std::string> paths;
  paths.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    ctx.lexed.push_back(&lexed[i]);
    paths.push_back(files[i].path);
  }
  const SymbolIndex index = SymbolIndex::build(paths, ctx.lexed);
  result.graph = build_include_graph(files);
  ctx.index = &index;
  ctx.graph = &result.graph;

  // Pass 2: per-file + semantic rules, parallel over files; suppression is
  // applied per file so only the counter needs to be shared.
  std::vector<std::vector<Diagnostic>> per_file(files.size());
  std::atomic<int> suppressed{0};
  for_each_index(files.size(), jobs, [&](std::size_t i) {
    std::vector<Diagnostic> raw;
    FileContext file;
    file.path = files[i].path;
    file.lexed = &lexed[i];
    for (const Rule& rule : rule_catalogue()) {
      if (rule_selected(options, rule.name)) rule.check(file, raw);
    }
    for (const SemanticRule& rule : semantic_rule_catalogue()) {
      if (rule_selected(options, rule.name)) rule.check(ctx, i, raw);
    }
    for (Diagnostic& d : raw) {
      if (is_suppressed(lexed[i], d.rule, d.line)) {
        suppressed.fetch_add(1, std::memory_order_relaxed);
      } else {
        per_file[i].push_back(std::move(d));
      }
    }
  });

  // Graph checks, once; same suppression treatment (the comment must sit on
  // the line above the #include — see project.h).
  std::vector<Diagnostic> graph_raw;
  check_include_graph(result.graph, graph_raw);
  for (Diagnostic& d : graph_raw) {
    if (!rule_selected(options, d.rule)) continue;
    const auto it = result.graph.index_of.find(d.path);
    if (it != result.graph.index_of.end() &&
        is_suppressed(lexed[static_cast<std::size_t>(it->second)], d.rule, d.line)) {
      suppressed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    result.diagnostics.push_back(std::move(d));
  }

  for (std::vector<Diagnostic>& v : per_file) {
    for (Diagnostic& d : v) result.diagnostics.push_back(std::move(d));
  }
  result.stats.suppressed = suppressed.load();
  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return result;
}

}  // namespace tsg::lint
