#include "tsg_lint/symbol_index.h"

#include <algorithm>

namespace tsg::lint {

namespace {

using Tokens = std::vector<Token>;

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Keywords that look like `name (...) {` but never are function names.
bool control_keyword(std::string_view s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" || s == "catch" ||
         s == "return" || s == "do" || s == "else" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "static_assert" || s == "new" || s == "delete" ||
         s == "throw" || s == "co_return" || s == "co_await" || s == "co_yield";
}

/// Qualifier tokens that may sit between a function's `)` and its `{`.
bool trailing_qualifier(std::string_view s) {
  return s == "const" || s == "noexcept" || s == "override" || s == "final" ||
         s == "mutable" || s == "volatile" || s == "&" || s == "&&" || s == "try" ||
         s == "constexpr" || s == "inline";
}

std::size_t matching_close_paren(const Tokens& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i;
  }
  return toks.size();
}

std::size_t matching_close_brace(const Tokens& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}" && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Skip a balanced `<...>` starting at toks[i] == "<". Angle brackets are
/// ambiguous in general; in return-type position (`Expected<Ticket>`) they
/// are reliably brackets. Returns the index one past the matching ">", or
/// `i` when no close is found within the statement.
std::size_t skip_angles(const Tokens& toks, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (toks[j].kind != TokKind::kPunct) continue;
    const std::string_view p = toks[j].text;
    if (p == "<") ++depth;
    if (p == ">" && --depth == 0) return j + 1;
    if (p == ">>" && depth >= 2) {
      depth -= 2;
      if (depth == 0) return j + 1;
    }
    if (p == ";" || p == "{") break;  // ran off the declaration
  }
  return i;
}

/// Parse `ident (:: ident)*` starting at `i`. On success sets `*name` /
/// `*qualified` and returns one past the chain; on failure returns `i`.
std::size_t parse_name_chain(const Tokens& toks, std::size_t i, std::string* name,
                             std::string* qualified) {
  if (i >= toks.size() || toks[i].kind != TokKind::kIdentifier) return i;
  std::string q(toks[i].text);
  std::string n(toks[i].text);
  std::size_t j = i + 1;
  while (j + 1 < toks.size() && is_punct(toks[j], "::") &&
         toks[j + 1].kind == TokKind::kIdentifier) {
    q += "::";
    q += toks[j + 1].text;
    n = std::string(toks[j + 1].text);
    j += 2;
  }
  *name = std::move(n);
  *qualified = std::move(q);
  return j;
}

/// After a function's closing `)`, find the body `{`: skips qualifiers, a
/// trailing return type, and a constructor initializer list. Returns the
/// token index of the body `{`, `decl_end` set to the `;` of a pure
/// declaration, or tokens.size() when the shape is not a function.
std::size_t find_body_brace(const Tokens& toks, std::size_t after_close,
                            std::size_t* decl_end) {
  std::size_t j = after_close;
  *decl_end = toks.size();
  // Qualifiers and `-> type` trailing return (skip to `{` or `;`).
  while (j < toks.size()) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kIdentifier && trailing_qualifier(t.text)) {
      ++j;
      continue;
    }
    if (is_punct(t, "&") || is_punct(t, "&&")) {
      ++j;
      continue;
    }
    if (is_punct(t, "->")) {
      // Trailing return type: consume tokens until `{` or `;` at depth 0.
      ++j;
      while (j < toks.size() && !is_punct(toks[j], "{") && !is_punct(toks[j], ";")) {
        if (is_punct(toks[j], "(")) j = matching_close_paren(toks, j);
        ++j;
      }
      continue;
    }
    if (t.kind == TokKind::kIdentifier && t.text == "noexcept" ) {
      ++j;
      continue;
    }
    if (is_punct(t, "(")) {
      // noexcept(...) / alignas(...)
      j = matching_close_paren(toks, j);
      if (j < toks.size()) ++j;
      continue;
    }
    if (is_punct(t, ":")) {
      // Constructor initializer list: `name(args)` / `name{args}` elements
      // separated by commas; the body `{` follows the last element.
      ++j;
      while (j < toks.size()) {
        if (toks[j].kind != TokKind::kIdentifier) return toks.size();
        ++j;
        // Optional template args on the member's type: rare, skip angles.
        if (j < toks.size() && is_punct(toks[j], "<")) j = skip_angles(toks, j);
        if (j >= toks.size()) return toks.size();
        if (is_punct(toks[j], "(")) {
          j = matching_close_paren(toks, j);
          if (j >= toks.size()) return toks.size();
          ++j;
        } else if (is_punct(toks[j], "{")) {
          j = matching_close_brace(toks, j);
        } else {
          return toks.size();
        }
        if (j < toks.size() && is_punct(toks[j], ",")) {
          ++j;
          continue;
        }
        break;
      }
      continue;
    }
    if (is_punct(t, "{")) return j;
    if (is_punct(t, ";")) {
      *decl_end = j;
      return toks.size();
    }
    return toks.size();  // `=` of a variable init, `,`, operators, …
  }
  return toks.size();
}

/// True when the token before `chain_start` can precede a declaration: a
/// statement/member boundary, an access-specifier colon, a template closer,
/// or nothing (file start). Filters `Status` spelled as a parameter or a
/// nested template argument.
bool at_declaration_start(const Tokens& toks, std::size_t chain_start) {
  if (chain_start == 0) return true;
  const Token& p = toks[chain_start - 1];
  if (p.kind == TokKind::kPunct) {
    return p.text == ";" || p.text == "{" || p.text == "}" || p.text == ":" ||
           p.text == ">";
  }
  if (p.kind == TokKind::kIdentifier) {
    return p.text == "inline" || p.text == "static" || p.text == "constexpr" ||
           p.text == "virtual" || p.text == "explicit" || p.text == "friend" ||
           p.text == "extern" || p.text == "typename";
  }
  return false;
}

}  // namespace

SymbolIndex SymbolIndex::build(const std::vector<std::string>& paths,
                               const std::vector<const LexedFile*>& lexed) {
  SymbolIndex index;

  // --- Pass A: general function definitions (any return type), anchored on
  // the `name-chain ( ... ) [quals] {` shape. These drive the call graph and
  // the non-Status overload guard.
  for (std::size_t f = 0; f < lexed.size(); ++f) {
    const Tokens& toks = lexed[f]->tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdentifier) continue;
      if (control_keyword(toks[i].text) || toks[i].text == "operator") continue;
      std::string name;
      std::string qualified;
      const std::size_t after_chain = parse_name_chain(toks, i, &name, &qualified);
      if (after_chain == i || after_chain >= toks.size()) continue;
      if (!is_punct(toks[after_chain], "(")) continue;
      // A member *call* (`x.f(...)`) is not a definition.
      if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) continue;
      const std::size_t close = matching_close_paren(toks, after_chain);
      if (close >= toks.size()) continue;
      std::size_t decl_end = toks.size();
      const std::size_t body = find_body_brace(toks, close + 1, &decl_end);
      if (body >= toks.size()) {
        i = after_chain;  // skip the chain; nothing indexed at this anchor
        continue;
      }
      FunctionDef def;
      def.name = name;
      def.qualified = qualified;
      def.path = paths[f];
      def.line = toks[i].line;
      def.file_index = f;
      def.body_begin = body;
      def.body_end = matching_close_brace(toks, body);
      index.functions_.push_back(std::move(def));
      i = after_chain;  // resume inside the params; bodies are rescanned anyway
    }
  }

  // --- Pass B: Status/Expected-returning signatures (definitions *and*
  // declarations), anchored on the spelled return type.
  for (std::size_t f = 0; f < lexed.size(); ++f) {
    const Tokens& toks = lexed[f]->tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdentifier) continue;
      if (t.text != "Status" && t.text != "Expected") continue;
      // Walk back over `ident ::` qualification (tsg::Status) to the chain
      // start, then require a declaration boundary before it.
      std::size_t chain_start = i;
      while (chain_start >= 2 && is_punct(toks[chain_start - 1], "::") &&
             toks[chain_start - 2].kind == TokKind::kIdentifier) {
        chain_start -= 2;
      }
      if (!at_declaration_start(toks, chain_start)) continue;
      std::size_t j = i + 1;
      if (t.text == "Expected") {
        if (j >= toks.size() || !is_punct(toks[j], "<")) continue;
        j = skip_angles(toks, j);
        if (j == i + 1) continue;  // unbalanced
      }
      std::string name;
      std::string qualified;
      const std::size_t after_chain = parse_name_chain(toks, j, &name, &qualified);
      if (after_chain == j || after_chain >= toks.size()) continue;
      if (!is_punct(toks[after_chain], "(")) continue;
      const std::size_t close = matching_close_paren(toks, after_chain);
      if (close >= toks.size()) continue;
      std::size_t decl_end = toks.size();
      const std::size_t body = find_body_brace(toks, close + 1, &decl_end);
      const bool is_definition = body < toks.size();
      const bool is_declaration = decl_end < toks.size();
      if (!is_definition && !is_declaration) continue;
      index.status_names_.insert(name);
      if (is_definition) {
        // Mark the matching pass-A entry (same file, same body) as
        // status-returning so functions() carries the flag.
        for (FunctionDef& def : index.functions_) {
          if (def.file_index == f && def.body_begin == body) {
            def.returns_status_like = true;
            break;
          }
        }
      }
    }
  }

  // Everything defined under a name with no Status-returning marking is a
  // non-Status overload of that name.
  for (const FunctionDef& def : index.functions_) {
    if (!def.returns_status_like && index.status_names_.count(def.name) > 0) {
      index.non_status_names_.insert(def.name);
    }
  }

  // --- Poll reachability: seed with functions whose body spells a poll,
  // then run the name-level call-graph fixpoint.
  auto body_has_ident = [&](const FunctionDef& def, auto&& pred) {
    const Tokens& toks = lexed[def.file_index]->tokens;
    for (std::size_t k = def.body_begin; k < def.body_end && k < toks.size(); ++k) {
      if (toks[k].kind == TokKind::kIdentifier && pred(toks[k].text)) return true;
    }
    return false;
  };
  for (const FunctionDef& def : index.functions_) {
    if (body_has_ident(def, [](std::string_view s) {
          return s == "should_stop" || s == "check_cancelled";
        })) {
      index.poll_reaching_.insert(def.name);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionDef& def : index.functions_) {
      if (index.poll_reaching_.count(def.name) > 0) continue;
      const Tokens& toks = lexed[def.file_index]->tokens;
      for (std::size_t k = def.body_begin; k + 1 < def.body_end && k + 1 < toks.size();
           ++k) {
        if (toks[k].kind != TokKind::kIdentifier) continue;
        if (!is_punct(toks[k + 1], "(")) continue;
        if (index.poll_reaching_.count(toks[k].text) == 0) continue;
        index.poll_reaching_.insert(def.name);
        changed = true;
        break;
      }
    }
  }

  return index;
}

}  // namespace tsg::lint
