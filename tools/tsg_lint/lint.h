// Rule engine of the tsg-lint static-analysis pass.
//
// Each rule is a pure function over one lexed translation unit. Rules are
// registered in a catalogue so the CLI can list them, run a subset
// (--only), and so the test suite can address each rule by name. See
// docs/STATIC_ANALYSIS.md for the project invariant each rule encodes.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "tsg_lint/lexer.h"

namespace tsg::lint {

/// One finding, formatted by the CLI as `path:line: [rule] message`.
struct Diagnostic {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
};

/// One input file of a project lint: repo-relative path (forward slashes —
/// the include resolver and the layer spec both key on it) plus content.
struct FileInput {
  std::string path;
  std::string content;
};

/// Context handed to every rule for one file.
struct FileContext {
  std::string path;       ///< path as given on the command line
  const LexedFile* lexed = nullptr;
};

struct Rule {
  std::string name;
  std::string summary;  ///< one line, shown by --list
  /// Appends raw findings (suppressions are applied by the engine).
  std::function<void(const FileContext&, std::vector<Diagnostic>&)> check;
};

/// All registered rules, in report order.
const std::vector<Rule>& rule_catalogue();

struct Options {
  /// When non-empty, run only these rules.
  std::set<std::string, std::less<>> only_rules;
};

struct LintStats {
  int files = 0;
  int suppressed = 0;  ///< findings silenced by tsg-lint: allow comments
};

/// Lex `content` and run the (selected) rules over it. Suppressed findings
/// are counted in `stats` (if given) and dropped from the result.
std::vector<Diagnostic> lint_source(const std::string& path, std::string_view content,
                                    const Options& options = {},
                                    LintStats* stats = nullptr);

}  // namespace tsg::lint
