// Cross-file symbol index of the tsg-lint semantic pass.
//
// Two-pass analysis: pass one walks every lexed translation unit and
// records (a) function/method definitions with their body token ranges and
// (b) every signature — definition or declaration — whose spelled return
// type is `Status` or `Expected<...>`. Pass two (the semantic rules in
// rules.cpp) runs per file against the merged index, which is what makes
// `expected-flow` interprocedural and `cancel-poll` able to follow a poll
// into a helper.
//
// The recognizer is token-level, not a parser: it anchors on the shape
//   [return-type] name (:: name)* ( params ) [quals / ctor-inits] { body }
// and deliberately ignores templates' instantiation, overload resolution,
// and namespaces beyond the spelled qualification. Names are indexed by
// their terminal identifier; a rule that needs overload safety must check
// `returns_only_status()` (no same-named non-Status definition anywhere).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tsg_lint/lexer.h"

namespace tsg::lint {

struct FunctionDef {
  std::string name;       ///< terminal identifier ("submit" of `Service::submit`)
  std::string qualified;  ///< the spelled chain ("Service::submit")
  std::string path;
  int line = 0;
  std::size_t file_index = 0;  ///< index into the input vector
  std::size_t body_begin = 0;  ///< token index of `{` (== body_end for declarations)
  std::size_t body_end = 0;    ///< token index one past the matching `}`
  bool returns_status_like = false;  ///< spelled return type is Status/Expected<...>
};

class SymbolIndex {
 public:
  /// Build the index over every file of the project. `lexed[i]` must be the
  /// lex of `paths[i]`'s content and must outlive the index (token views).
  static SymbolIndex build(const std::vector<std::string>& paths,
                           const std::vector<const LexedFile*>& lexed);

  const std::vector<FunctionDef>& functions() const { return functions_; }

  /// At least one indexed signature with this terminal name returns
  /// Status/Expected.
  bool any_status_signature(std::string_view name) const {
    return status_names_.count(name) > 0;
  }

  /// Every indexed definition/signature with this terminal name returns
  /// Status/Expected (the overload guard for expected-flow). False when the
  /// name was never indexed.
  bool returns_only_status(std::string_view name) const {
    return status_names_.count(name) > 0 && non_status_names_.count(name) == 0;
  }

  /// The body of some function with this name polls a cancel token —
  /// directly (`should_stop` / `check_cancelled`) or transitively through a
  /// call to another poll-reaching function (fixpoint over the name-level
  /// call graph).
  bool reaches_poll(std::string_view name) const {
    return poll_reaching_.count(name) > 0;
  }

 private:
  std::vector<FunctionDef> functions_;
  std::set<std::string, std::less<>> status_names_;
  std::set<std::string, std::less<>> non_status_names_;
  std::set<std::string, std::less<>> poll_reaching_;
};

}  // namespace tsg::lint
