// Include-graph layering pass of tsg-lint.
//
// Parses every `#include "..."` directive of the project (quoted includes
// only — angle includes are the system's business), resolves them against
// the linted file set, and enforces the declared module layer DAG:
//
//   contracts (src/common/contracts.h — macro-only, includes nothing)
//     → obs → common → matrix → core → csb/gen/graph/solver/baselines
//     → chaos → service → harness → apps (tools, bench, tests, examples)
//
// A module may include itself and strictly lower layers. `tools/tsg_lint`
// is special-cased as standalone: it may include only itself, keeping the
// "lints even when the library does not build" guarantee mechanical. Two
// rules come out of this pass:
//
//   include-cycle   — a file-level #include cycle (reported once per cycle)
//   layer-violation — an edge against the DAG, or a module absent from the
//                     declared spec (new modules must declare their layer
//                     here before they land)
//
// The graph is also emitted as DOT (module level, for docs) and JSON (file
// level, for tooling) via --dot / --graph-json.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "tsg_lint/lint.h"

namespace tsg::lint {

struct IncludeEdge {
  int to = 0;    ///< node index of the included file
  int line = 0;  ///< line of the #include directive
};

struct IncludeNode {
  std::string path;    ///< repo-relative, forward slashes
  std::string module;  ///< layer-spec module ("core", "tests", …)
  int layer = -1;      ///< declared layer, kAppLayer for consumers, -1 unknown
  std::vector<IncludeEdge> edges;
};

/// Layer number of the unconstrained consumer band (tools/bench/tests/…).
inline constexpr int kAppLayer = 100;

struct IncludeGraph {
  std::vector<IncludeNode> nodes;
  std::map<std::string, int> index_of;  ///< path -> node index

  /// Module-level edge set (module -> set of included modules), aggregated
  /// from the file edges. Self-edges omitted.
  std::map<std::string, std::map<std::string, int>> module_edges() const;
};

/// Module of a repo-relative path under the declared spec ("" when the path
/// is outside every known root).
std::string module_of(const std::string& path);

/// Declared layer of a module, -1 when the module is not in the spec.
int layer_of(const std::string& module);

/// Build the file-level graph. Unresolvable includes (system headers,
/// generated files outside the lint set) are ignored.
IncludeGraph build_include_graph(const std::vector<FileInput>& files);

/// Run the include-cycle and layer-violation checks, appending findings.
void check_include_graph(const IncludeGraph& graph, std::vector<Diagnostic>& out);

/// Module-level DOT digraph, layers as ranks — the docs diagram.
void write_graph_dot(const IncludeGraph& graph, std::ostream& os);

/// File-level JSON: nodes (path/module/layer) and edges.
void write_graph_json(const IncludeGraph& graph, std::ostream& os);

}  // namespace tsg::lint
