// Command-line driver replicating the paper artifact's `test` executable
// (appendix A.7/A.8):
//
//   ./tilespgemm_cli -d 0 -aat 0 <path/to/matrix.mtx>
//
// and printing the same 18 output lines the artifact documents: matrix
// info, load time, tile size, flop count, conversion time, format space,
// per-step and allocation times, tiles/nnz of C, runtime + GFlops, and a
// correctness check against an independent SpGEMM. On top of the artifact
// flags it exposes the robustness knobs: --validate grades the operand
// checking, --budget-mb overrides the modeled device budget, and the
// budget outcome (chunks / budget-limited) is printed with the timings.
// Failures exit nonzero with the structured Status ("Code: message") on
// stderr.
//
// Without a matrix path a built-in generated matrix is used, so the tool
// runs in this offline environment.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "baselines/hash.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/spgemm_context.h"
#include "core/tile_spgemm.h"
#include "core/tile_stats.h"
#include "gen/generators.h"
#include "matrix/compare.h"
#include "matrix/convert.h"
#include "matrix/io_mm.h"
#include "matrix/stats.h"
#include "matrix/transpose.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/spgemm_service.h"

namespace {

void usage() {
  std::cerr << "usage: tilespgemm_cli [-d <gpu-device>] [-aat 0|1] [--validate off|cheap|full]\n"
               "                      [--budget-mb <n>] [--no-degrade] [--trace <file>]\n"
               "                      [--metrics <file>] [--serve <workers>]\n"
               "                      [--timeout-ms <n>] [--retries <n>] [matrix.mtx]\n"
               "  -d           accepted for artifact compatibility (no GPU here)\n"
               "  -aat         0: C = A*A (default), 1: C = A*A^T\n"
               "  --validate   operand checking at the context boundary (default cheap)\n"
               "  --budget-mb  modeled device-memory budget (default TSG_DEVICE_MEM_MB)\n"
               "  --no-degrade fail with BudgetExceeded instead of chunked execution\n"
               "  --trace      write a Chrome trace_event JSON of the run (open in Perfetto)\n"
               "  --metrics    write the metrics-registry snapshot as JSON\n"
               "  --serve      route the multiply through SpgemmService with <workers>\n"
               "               warm workers (async submission path; admission-controlled)\n"
               "  --timeout-ms (--serve only) per-request deadline; an expired request\n"
               "               fails with DeadlineExceeded instead of running forever\n"
               "  --retries    (--serve only) transparent retries for transient\n"
               "               (allocation) failures, with exponential backoff\n";
}

/// Print the structured failure the way scripts expect it: one
/// "Code: message" line on stderr, nonzero exit.
int fail_with(const tsg::Status& status) {
  std::cerr << "error: " << status.to_string() << "\n";
  return 1;
}

}  // namespace

namespace {

/// Value of a `--flag value` or `--flag=value` argument; empty when `argv[i]`
/// is not that flag. Advances `i` past a space-separated value.
std::string flag_value(int argc, char** argv, int& i, const char* flag) {
  const std::size_t flen = std::strlen(flag);
  if (std::strncmp(argv[i], flag, flen) != 0) return {};
  if (argv[i][flen] == '=') return std::string(argv[i] + flen + 1);
  if (argv[i][flen] == '\0' && i + 1 < argc) return std::string(argv[++i]);
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsg;

  // Crash post-mortems are an entry-point decision (the library never
  // installs handlers behind the caller's back): with TSG_FLIGHT_DIR set, a
  // fatal signal leaves a flight_*.json naming the in-flight request.
  if (obs::FlightRecorder::instance().enabled()) {
    obs::FlightRecorder::install_signal_handlers();
  }

  int aat = 0;
  int serve_workers = 0;
  long timeout_ms = 0;
  int retries = 0;
  std::string path;
  std::string trace_path;
  std::string metrics_path;
  SpgemmContext::Config cfg = SpgemmContext::Config::from_env();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-d") == 0 && i + 1 < argc) {
      ++i;  // device id: accepted and ignored (CPU build)
    } else if (std::strcmp(argv[i], "-aat") == 0 && i + 1 < argc) {
      aat = std::atoi(argv[++i]);
    } else if (std::string level = flag_value(argc, argv, i, "--validate"); !level.empty()) {
      if (level == "off") {
        cfg.with_validation(ValidationLevel::kOff);
      } else if (level == "cheap") {
        cfg.with_validation(ValidationLevel::kCheap);
      } else if (level == "full") {
        cfg.with_validation(ValidationLevel::kFull);
      } else {
        std::cerr << "error: --validate expects off|cheap|full, got '" << level << "'\n";
        usage();
        return 2;
      }
    } else if (std::string mb_arg = flag_value(argc, argv, i, "--budget-mb");
               !mb_arg.empty()) {
      const long mb = std::atol(mb_arg.c_str());
      if (mb <= 0) {
        std::cerr << "error: --budget-mb expects a positive MB count\n";
        usage();
        return 2;
      }
      cfg.with_device_mem_mb(static_cast<std::size_t>(mb));
    } else if (std::strcmp(argv[i], "--no-degrade") == 0) {
      cfg.with_degradation(false);
    } else if (std::string file = flag_value(argc, argv, i, "--trace"); !file.empty()) {
      trace_path = file;
      cfg.with_tracing(true);
    } else if (std::string file = flag_value(argc, argv, i, "--metrics"); !file.empty()) {
      metrics_path = file;
      cfg.with_metrics(true);
    } else if (std::string n = flag_value(argc, argv, i, "--serve"); !n.empty()) {
      serve_workers = std::atoi(n.c_str());
      if (serve_workers <= 0) {
        std::cerr << "error: --serve expects a positive worker count\n";
        usage();
        return 2;
      }
    } else if (std::string n = flag_value(argc, argv, i, "--timeout-ms"); !n.empty()) {
      timeout_ms = std::atol(n.c_str());
      if (timeout_ms <= 0) {
        std::cerr << "error: --timeout-ms expects a positive millisecond count\n";
        usage();
        return 2;
      }
    } else if (std::string n = flag_value(argc, argv, i, "--retries"); !n.empty()) {
      retries = std::atoi(n.c_str());
      if (retries < 0 || (retries == 0 && n != "0")) {
        std::cerr << "error: --retries expects a non-negative count\n";
        usage();
        return 2;
      }
    } else if (argv[i][0] == '-') {
      usage();
      return 2;
    } else {
      path = argv[i];
    }
  }
  if (serve_workers == 0 && (timeout_ms > 0 || retries > 0)) {
    std::cerr << "error: --timeout-ms/--retries are request-lifecycle options and "
                 "require --serve\n";
    usage();
    return 2;
  }

  // Lines 1-3: input matrix and load time. The load is a begin/end span
  // (not a scoped 'X' event): the early returns below would otherwise
  // record nothing for a run that died loading, which is exactly the run a
  // trace should explain.
  TSG_TRACE_BEGIN("cli/load");
  Timer load_timer;
  Csr<double> a;
  if (!path.empty()) {
    try {
      a = coo_to_csr(read_matrix_market_file<double>(path));
    } catch (const Error& e) {
      return fail_with(e.status());
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  } else {
    path = "<generated: rmat scale 12, edge factor 6>";
    a = gen::rmat(12, 6.0, 1);
  }
  const double load_s = load_timer.seconds();
  TSG_TRACE_END("cli/load");
  std::cout << "input matrix: " << path << "\n";
  std::cout << "rows = " << a.rows << ", cols = " << a.cols << ", nnz = " << a.nnz() << "\n";
  std::cout << "file loading time: " << load_s << " s\n";

  // Line 4: tile size.
  std::cout << "tile size: " << kTileDim << " x " << kTileDim << "\n";

  const Csr<double> b = aat != 0 ? transpose(a) : a;
  // Line 5: flops of the multiplication.
  const offset_t flops = spgemm_flops(a, b);
  std::cout << "#flops of C = A*" << (aat != 0 ? "A^T" : "A") << ": " << flops << "\n";

  // --serve: the same multiply through the async service front end. The
  // condensed report (admission outcome, estimate, runtime, budget outcome)
  // replaces the artifact's per-step breakdown — SpgemmRunReport is the
  // service's result shape, and the correctness check still runs.
  if (serve_workers > 0) {
    service::SpgemmService::Config scfg;
    scfg.with_workers(serve_workers)
        .with_device_mem_mb(cfg.device_mem_mb)
        .with_degradation(cfg.degrade_on_budget)
        .with_context(cfg);
    service::SpgemmService svc(scfg);
    service::SpgemmRequest req{std::make_shared<const Csr<double>>(a)};
    if (aat != 0) req.b = std::make_shared<const Csr<double>>(b);
    service::SubmitOptions opts;
    if (timeout_ms > 0) opts.with_timeout(std::chrono::milliseconds(timeout_ms));
    opts.with_retries(retries);
    Expected<service::Ticket> ticket = svc.try_submit(std::move(req), opts);
    if (!ticket.ok()) return fail_with(ticket.status());
    std::cout << "service: " << serve_workers << " worker(s), request #" << ticket->id
              << ", admission "
              << (ticket->admission == service::Admission::kDegraded ? "degraded"
                                                                     : "admitted")
              << ", estimated footprint "
              << static_cast<double>(ticket->estimated_bytes) / (1024.0 * 1024.0)
              << " MB (budget " << static_cast<double>(svc.budget_bytes()) / (1024.0 * 1024.0)
              << " MB)\n";
    SpgemmRunReport report;
    try {
      report = ticket->result.get();
    } catch (const Error& e) {
      return fail_with(e.status());
    }
    svc.shutdown();
    std::cout << "request correlation: request_id=" << report.request_id
              << " trace_id=" << report.trace_id
              << " (join key for --trace events and structured logs)\n";
    std::cout << "TileSpGEMM runtime (service): " << report.core_ms << " ms, "
              << gflops(flops, report.core_ms) << " GFlops\n";
    std::cout << "execution chunks: " << report.chunks
              << (report.budget_limited ? " (budget-limited, graceful degradation)" : "")
              << "\n";
    std::cout << "nnz of C: " << report.c.nnz() << "\n";
    if (!metrics_path.empty()) {
      std::ofstream metrics_out(metrics_path);
      if (!metrics_out) {
        return fail_with(Status::io_error("cannot open metrics file '" + metrics_path + "'"));
      }
      obs::MetricsRegistry::instance().write_json(metrics_out);
      std::cout << "metrics written: " << metrics_path << "\n";
    }
    try {
      const Csr<double> expected = spgemm_hash(a, b);
      const CompareResult check = compare(expected, report.c, {1e-8, 1e-300, false, 0.0});
      std::cout << "check vs independent SpGEMM: " << (check.equal ? "PASS" : "FAIL")
                << (check.equal ? "" : (" (" + check.message + ")")) << "\n";
      return check.equal ? 0 : 1;
    } catch (const std::exception&) {
      std::cout << "check vs independent SpGEMM: SKIPPED (comparator out of memory)\n";
      return 0;
    }
  }

  // Line 6: CSR -> tiled conversion time, measured by the context itself
  // and folded into the timings as `convert_ms` (no ad-hoc timer).
  SpgemmContext ctx(cfg);
  const TileMatrix<double> ta = ctx.to_tile(a);
  const TileMatrix<double> tb = aat != 0 ? ctx.to_tile(b) : ta;

  // Line 7: tiled data structure space.
  const TileFormatStats format = tile_format_stats(ta);
  std::cout << "tiled structure space: "
            << static_cast<double>(format.bytes) / 1e6 << " MB (CSR: "
            << static_cast<double>(a.bytes()) / 1e6 << " MB)\n";

  // Lines 8-14: step and allocation times. The non-throwing entry point:
  // a too-small budget (with --no-degrade), a malformed operand, or an
  // out-of-memory all land here as a Status instead of a crash.
  TSG_TRACE_BEGIN("cli/spgemm", flops);
  Expected<TileSpgemmResult<double>> run = ctx.try_run(ta, tb);
  TSG_TRACE_END("cli/spgemm");
  if (!run.ok()) return fail_with(run.status());
  const TileSpgemmResult<double>& result = *run;
  const TileSpgemmTimings& t = result.timings;
  std::cout << "CSR->tile conversion time: " << t.convert_ms << " ms\n";
  std::cout << "step 1 (tile structure of C):   " << t.step1_ms << " ms\n";
  std::cout << "step 2 (per-tile symbolic):     " << t.step2_ms << " ms\n";
  std::cout << "step 3 (numeric):               " << t.step3_ms << " ms\n";
  std::cout << "memory allocation (CPU+GPU eq): " << t.alloc_ms << " ms\n";
  std::cout << "scheduling (cost bins):         " << t.plan_ms << " ms\n";
  std::cout << "total:                          " << t.core_ms() << " ms\n";
  std::cout << "conversion / single SpGEMM:     "
            << (t.core_ms() > 0 ? t.convert_ms / t.core_ms() : 0.0) << "x\n";
  const int threads = ctx.config().threads > 0 ? ctx.config().threads : num_threads();
  std::cout << "threads: " << threads << "\n";
  std::cout << "device budget: "
            << static_cast<double>(device_memory_budget_bytes()) / (1024.0 * 1024.0)
            << " MB, execution chunks: " << t.chunks
            << (t.budget_limited ? " (budget-limited, graceful degradation)" : "") << "\n";

  // Observability dumps, written as soon as the multiply is done so a
  // failing correctness check (or a comparator out-of-memory) cannot lose
  // them. The trace covers everything up to this point; the metrics file is
  // the full registry (this process ran exactly one multiply).
  if (!trace_path.empty()) {
    std::ofstream trace_out(trace_path);
    if (!trace_out) {
      return fail_with(Status::io_error("cannot open trace file '" + trace_path + "'"));
    }
    obs::TraceCollector::instance().write_chrome_trace(trace_out);
    std::cout << "trace written: " << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream metrics_out(metrics_path);
    if (!metrics_out) {
      return fail_with(Status::io_error("cannot open metrics file '" + metrics_path + "'"));
    }
    obs::MetricsRegistry::instance().write_json(metrics_out);
    std::cout << "metrics written: " << metrics_path << "\n";
  }

  // Lines 15-16: output structure.
  std::cout << "tiles of C: " << result.c.num_tiles() << "\n";
  std::cout << "nnz of C: " << result.c.nnz() << "\n";

  // Line 17: runtime and throughput.
  std::cout << "TileSpGEMM runtime: " << t.core_ms() << " ms, "
            << gflops(flops, t.core_ms()) << " GFlops\n";

  // Line 18: correctness check against an independent method (the artifact
  // compares with cuSPARSE; we use the row-row hash SpGEMM).
  try {
    const Csr<double> expected = spgemm_hash(a, b);
    const CompareResult check = compare(expected, tile_to_csr(result.c), {1e-8, 1e-300,
                                                                          false, 0.0});
    std::cout << "check vs independent SpGEMM: " << (check.equal ? "PASS" : "FAIL")
              << (check.equal ? "" : (" (" + check.message + ")")) << "\n";
    return check.equal ? 0 : 1;
  } catch (const std::exception&) {
    std::cout << "check vs independent SpGEMM: SKIPPED (comparator out of memory)\n";
    return 0;
  }
}
