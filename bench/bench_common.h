// Shared plumbing for the figure/table bench binaries.
#pragma once

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/report.h"
#include "harness/runner.h"

namespace tsg::bench {

/// Minimal flag handling: every bench accepts --csv (machine-readable
/// output) and --reps N (override TSG_BENCH_REPS).
struct BenchArgs {
  bool csv = false;
  int reps = 0;  // 0 = use bench_reps() default

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) {
        args.csv = true;
      } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
        args.reps = std::atoi(argv[++i]);
      } else {
        std::cerr << "usage: bench [--csv] [--reps N]\n";
        std::exit(2);
      }
    }
    return args;
  }

  int effective_reps() const { return reps > 0 ? reps : bench_reps(); }
};

inline void emit(const Table& t, const BenchArgs& args) {
  if (args.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
}

inline std::string gflops_or_fail(const Measurement& m) {
  // The paper prints "0.00" on bars whose method failed (out of memory);
  // "fail" disambiguates that from a genuinely tiny throughput.
  return m.ok ? fmt(m.gflops) : "fail";
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "reproduces: " << paper_ref << "\n\n";
}

}  // namespace tsg::bench
