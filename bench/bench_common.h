// Shared plumbing for the figure/table bench binaries.
#pragma once

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/report.h"
#include "harness/runner.h"
#include "obs/metrics.h"

namespace tsg::bench {

/// Minimal flag handling: every bench accepts --csv (machine-readable
/// output), --reps N (override TSG_BENCH_REPS), and --metrics FILE (dump
/// the metrics-registry snapshot as JSON when the bench exits — the
/// machine-readable provenance next to each figure's output).
struct BenchArgs {
  bool csv = false;
  int reps = 0;  // 0 = use bench_reps() default
  std::string metrics_path;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) {
        args.csv = true;
      } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
        args.reps = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
        args.metrics_path = argv[++i];
      } else {
        std::cerr << "usage: bench [--csv] [--reps N] [--metrics FILE]\n";
        std::exit(2);
      }
    }
    return args;
  }

  int effective_reps() const { return reps > 0 ? reps : bench_reps(); }

  /// Call once after the bench's tables are printed. No-op without
  /// --metrics; failures go to stderr but do not fail the bench (the
  /// figure output is the primary artifact).
  void write_metrics() const {
    if (metrics_path.empty()) return;
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "warning: cannot open metrics file '" << metrics_path << "'\n";
      return;
    }
    obs::MetricsRegistry::instance().write_json(out);
    std::cerr << "metrics written: " << metrics_path << "\n";
  }
};

inline void emit(const Table& t, const BenchArgs& args) {
  if (args.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
}

inline std::string gflops_or_fail(const Measurement& m) {
  // The paper prints "0.00" on bars whose method failed (out of memory);
  // "fail" disambiguates that from a genuinely tiny throughput.
  return m.ok ? fmt(m.gflops) : "fail";
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "reproduces: " << paper_ref << "\n\n";
}

}  // namespace tsg::bench
