// Reordering ablation: tile occupancy is a property of the *ordering*, not
// the matrix. RCM-reordering a scattered matrix packs its nonzeros into
// far fewer, far denser tiles, turning TileSpGEMM's documented worst case
// (cop20k_A-style hyper-sparse tiles, Section 4.2) into its best case.
#include <iostream>

#include "bench_common.h"
#include "common/timer.h"
#include "core/tile_spgemm.h"
#include "core/tile_stats.h"
#include "gen/generators.h"
#include "matrix/reorder.h"

namespace {

using namespace tsg;

double time_tile(const Csr<double>& a, int reps) {
  const TileMatrix<double> t = csr_to_tile(a);
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    (void)tile_spgemm(t, t);
    best = std::min(best, timer.milliseconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  bench::print_header("Ablation: RCM reordering vs tile occupancy",
                      "Section 4.2's cop20k_A pathology is an ordering artefact");
  Table table({"matrix", "ordering", "bandwidth", "tiles", "nnz/tile", "TileSpGEMM ms"});

  struct Workload {
    const char* name;
    Csr<double> a;
  };
  std::vector<Workload> workloads;
  {
    // A band matrix scrambled by a symmetric shuffle: the worst ordering of
    // a perfectly tileable matrix.
    const Csr<double> band = gen::banded(4000, 12, 11);
    tracked_vector<index_t> shuffle(4000);
    for (index_t i = 0; i < 4000; ++i) shuffle[static_cast<std::size_t>(i)] = (i * 2011) % 4000;
    workloads.push_back({"scrambled band", permute_symmetric(band, shuffle)});
    // FEM-like clustered rows, whose natural ordering is already decent.
    workloads.push_back({"fem clustered",
                         gen::symmetrized(gen::clustered_rows(2000, 4, 10, 12))});
  }

  for (const Workload& w : workloads) {
    for (const bool reordered : {false, true}) {
      const Csr<double> a = reordered ? permute_symmetric(w.a, rcm_ordering(w.a)) : w.a;
      const TileFormatStats s = tile_format_stats(csr_to_tile(a));
      table.add_row({w.name, reordered ? "RCM" : "natural", std::to_string(bandwidth(a)),
                     std::to_string(s.num_tiles), fmt(s.avg_nnz_per_tile, 2),
                     fmt(time_tile(a, args.effective_reps()))});
    }
  }
  bench::emit(table, args);
  std::cout << "takeaway: when a good band ordering exists (scrambled band), RCM\n"
               "packs the same nonzeros into ~15x fewer, denser tiles and the tiled\n"
               "SpGEMM speeds up ~10x — the hyper-sparse-tile regime is an ordering\n"
               "artefact there. When the natural ordering is already clustered\n"
               "(FEM case), RCM's pure bandwidth objective can *hurt* tile\n"
               "occupancy: reorder by measurement, not by default.\n";
  args.write_metrics();
  return 0;
}
