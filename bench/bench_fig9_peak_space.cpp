// Figure 9: runtime peak space cost of C = A^2 on the 18 representative
// matrices for the four open-source methods (cuSPARSE is closed source and
// not instrumented in the paper either; the SPA proxy is reported here for
// completeness but marked). Prints completion time vs peak tracked MB, and
// a short memory-over-time trace per matrix for the tiled method.
#include <iostream>

#include "bench_common.h"
#include "common/memory.h"
#include "common/timer.h"
#include "core/tile_spgemm.h"
#include "gen/representative.h"
#include "matrix/transpose.h"

int main(int argc, char** argv) {
  using namespace tsg;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const auto suite = gen::representative_suite();

  bench::print_header("Fig. 9",
                      "peak workspace (MB) and completion time (ms) of C = A^2");
  // Paper compares the open methods: bhSPARSE (ESC), NSPARSE (Hash),
  // spECK (Adaptive) and TileSpGEMM.
  std::vector<SpgemmAlgorithm> algos;
  for (const auto& a : paper_algorithms()) {
    if (a.name != "SPA") algos.push_back(a);
  }

  Table table([&] {
    std::vector<std::string> headers = {"matrix"};
    for (const auto& a : algos) {
      headers.push_back(a.name + " ms");
      headers.push_back(a.name + " MB");
      if (a.is_tile) headers.push_back("chunks");
    }
    return headers;
  }());

  for (const auto& m : suite) {
    std::vector<std::string> cells = {m.name};
    for (const auto& algo : algos) {
      const Measurement r = measure(m, algo, SpgemmOp::kASquared, args.effective_reps());
      cells.push_back(r.ok ? fmt(r.ms) : "fail");
      cells.push_back(r.ok ? fmt(r.peak_mb) : "-");
      if (algo.is_tile) {
        // The budget-degradation column: ">1" is the "completes where the
        // row-row methods fail" half of the Fig. 9 story.
        cells.push_back(r.ok ? fmt_chunks(r.chunks, r.budget_limited) : "-");
      }
    }
    table.add_row(cells);
  }
  bench::emit(table, args);

  // Memory-over-time trace of the tiled method on one representative, the
  // time-series view Fig. 9 plots.
  std::cout << "\nTileSpGEMM workspace trace on 'cant' (time ms -> live MB):\n";
  for (const auto& m : suite) {
    if (m.name != "cant") continue;
    MemoryTracker::instance().reset();
    MemoryTracker::instance().start_trace();
    // Call the tiled method directly (not through `profiled`, whose peak
    // scope would reset the tracker mid-trace).
    (void)spgemm_tile(m.a, m.a);
    const auto trace = MemoryTracker::instance().stop_trace();
    // Print ~10 evenly spaced samples.
    const std::size_t step = trace.size() > 10 ? trace.size() / 10 : 1;
    for (std::size_t i = 0; i < trace.size(); i += step) {
      std::cout << "  " << fmt(trace[i].time_ms) << " ms  "
                << fmt(static_cast<double>(trace[i].bytes) / (1024.0 * 1024.0)) << " MB\n";
    }
  }
  std::cout << "paper shape: bhSPARSE uses the most space; TileSpGEMM typically\n"
               "uses less and finishes earlier, except on hyper-sparse matrices\n"
               "(cop20k_A) where per-tile metadata dominates.\n";
  args.write_metrics();
  return 0;
}
