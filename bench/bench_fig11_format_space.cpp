// Figure 11: storage cost of the tiled sparse structure vs standard CSR and
// the two CSB variants (Buluç et al.) on the matrices tested.
#include <iostream>

#include "bench_common.h"
#include "core/tile_convert.h"
#include "core/tile_stats.h"
#include "csb/csb.h"
#include "gen/representative.h"

int main(int argc, char** argv) {
  using namespace tsg;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  bench::print_header("Fig. 11", "space cost: CSR vs CSB-M vs CSB-I vs tiled structure");
  Table table({"matrix", "CSR MB", "CSB-M MB", "CSB-I MB", "Tiled MB", "Tiled vs CSR"});

  auto mb = [](std::size_t b) { return static_cast<double>(b) / (1024.0 * 1024.0); };
  double csr_total = 0, csbm_total = 0, csbi_total = 0, tiled_total = 0;
  double csr_dense = 0, tiled_dense = 0;  // matrices with well-filled tiles
  int n = 0, n_dense = 0;
  for (const auto& m : gen::representative_suite()) {
    const double csr = mb(m.a.bytes());
    const double csbm = mb(csr_to_csb(m.a, CsbKind::kMorton).bytes());
    const double csbi = mb(csr_to_csb(m.a, CsbKind::kIndexed).bytes());
    const TileMatrix<double> t = csr_to_tile(m.a);
    const double tiled = mb(t.bytes());
    table.add_row({m.name, fmt(csr), fmt(csbm), fmt(csbi), fmt(tiled),
                   fmt(100.0 * (tiled - csr) / csr, 1) + "%"});
    csr_total += csr;
    csbm_total += csbm;
    csbi_total += csbi;
    tiled_total += tiled;
    ++n;
    if (static_cast<double>(t.nnz()) / static_cast<double>(t.num_tiles()) >= 8.0) {
      csr_dense += csr;
      tiled_dense += tiled;
      ++n_dense;
    }
  }
  bench::emit(table, args);
  std::cout << "mean deltas: tiled vs CSR " << fmt((tiled_total - csr_total) / n) << " MB, "
            << "tiled vs CSB-M " << fmt((tiled_total - csbm_total) / n) << " MB, "
            << "tiled vs CSB-I " << fmt((tiled_total - csbi_total) / n) << " MB per matrix\n";
  std::cout << "over the " << n_dense << " matrices with >= 8 nnz/tile (the paper's\n"
               "typical regime at full scale): tiled vs CSR "
            << fmt((tiled_dense - csr_dense) / n_dense)
            << " MB per matrix (negative = tiled smaller)\n";
  std::cout << "paper shape: the tiled structure averages less space than CSR but\n"
               "more than CSB-M/CSB-I (it additionally stores 16 uint8 row pointers\n"
               "and 16 uint16 masks per tile).\n";
  args.write_metrics();
  return 0;
}
