// Table 2: n(A), nnz(A), #flops of C = A^2, nnz(C) and compression rate for
// the 18 representative matrices (here: their synthetic proxies — see
// DESIGN.md for the scaling rationale).
#include <iostream>

#include "bench_common.h"
#include "core/tile_spgemm.h"
#include "gen/representative.h"
#include "matrix/stats.h"

int main(int argc, char** argv) {
  using namespace tsg;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  bench::print_header("Table 2", "workload statistics of the 18 representative matrices");
  Table table({"matrix", "n(A)", "nnz(A)", "#flops A^2", "nnz(C)", "compression rate",
               "structure"});

  for (const auto& m : gen::representative_suite()) {
    const offset_t flops = spgemm_flops(m.a, m.a);
    // The tiled method computes nnz(C) without any global intermediate
    // buffer, so it completes even on the highest-rate matrices.
    const Csr<double> c = spgemm_tile(m.a, m.a);
    table.add_row({m.name, fmt_count(m.a.rows), fmt_count(m.a.nnz()), fmt_count(flops),
                   fmt_count(c.nnz()), fmt(compression_rate(flops / 2, c.nnz()), 2),
                   m.structure});
  }
  bench::emit(table, args);
  std::cout << "paper shape: rates span ~1.1 (mac_econ) to ~136 (SiO2); the proxies\n"
               "cover the same axis at reduced scale.\n";
  args.write_metrics();
  return 0;
}
