#include "regress_harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/simd_dispatch.h"
#include "core/spgemm_context.h"
#include "gen/generators.h"

namespace tsg::bench {
namespace {

struct Args {
  std::string emit_path;
  std::string compare_path;
  double tolerance = 0.15;
  double assert_speedup = 0.0;  // 0 = off
  double min_ms = 0.2;          // below this baseline median, report but don't gate
  int reps = 7;
  double scale = 1.0;
  bool bad = false;
};

Args parse_args(int argc, char** argv) {
  Args a;
  if (const char* env = std::getenv("TSG_BENCH_REPS")) a.reps = std::atoi(env);
  if (const char* env = std::getenv("TSG_BENCH_SCALE")) a.scale = std::atof(env);
  if (const char* env = std::getenv("TSG_BENCH_TOLERANCE")) a.tolerance = std::atof(env);
  if (const char* env = std::getenv("TSG_BENCH_MIN_MS")) a.min_ms = std::atof(env);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--regress") continue;
    if (arg == "--emit") {
      if (const char* v = next()) a.emit_path = v; else a.bad = true;
    } else if (arg == "--compare") {
      if (const char* v = next()) a.compare_path = v; else a.bad = true;
    } else if (arg == "--tolerance") {
      if (const char* v = next()) a.tolerance = std::atof(v); else a.bad = true;
    } else if (arg == "--assert-speedup") {
      if (const char* v = next()) a.assert_speedup = std::atof(v); else a.bad = true;
    } else if (arg == "--min-ms") {
      if (const char* v = next()) a.min_ms = std::atof(v); else a.bad = true;
    } else if (arg == "--reps") {
      if (const char* v = next()) a.reps = std::atoi(v); else a.bad = true;
    } else if (arg == "--scale") {
      if (const char* v = next()) a.scale = std::atof(v); else a.bad = true;
    } else {
      std::fprintf(stderr, "regress: unknown argument '%s'\n", arg.c_str());
      a.bad = true;
    }
  }
  if (a.reps < 1) a.reps = 1;
  if (a.scale <= 0.0) a.scale = 1.0;
  return a;
}

/// The step2-dominated suite: structure classes whose per-tile symbolic
/// work (intersection + mask OR) dominates the pipeline. Sizes scale
/// linearly with --scale so CI can bound wall time.
struct SuiteCase {
  std::string name;
  Csr<double> csr;
};

index_t scaled(double scale, index_t n, index_t lo = 16) {
  const auto v = static_cast<index_t>(static_cast<double>(n) * scale);
  return v < lo ? lo : v;
}

std::vector<SuiteCase> make_suite(double scale) {
  std::vector<SuiteCase> suite;
  suite.push_back({"dense_blocks", gen::dense_blocks(scaled(scale, 256, 4), 16, 9101)});
  suite.push_back({"blocks_mid", gen::dense_blocks(scaled(scale, 192, 4), 12, 9102)});
  suite.push_back({"banded_wide", gen::banded(scaled(scale, 4096, 256), 24, 9103)});
  suite.push_back({"clustered", gen::clustered_rows(scaled(scale, 1536, 128), 4, 10, 9104)});
  suite.push_back({"rmat", gen::rmat(scale >= 1.0 ? 11 : 9, 8.0, 9105)});
  suite.push_back({"stencil9", gen::stencil_9pt(scaled(scale, 64, 8), scaled(scale, 64, 8))});
  return suite;
}

double median(std::vector<double> v) {
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    const double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
    m = (m + lo) / 2.0;
  }
  return m;
}

/// Median per-step timings of `reps` runs of one configuration (one warmup
/// run first so pooled workspaces reach steady-state capacity).
struct StepMedians {
  double step2_ms = 0.0;
  double step3_ms = 0.0;
  double core_ms = 0.0;
};

/// Interleaved measurement: each rep runs every configuration back to back,
/// so machine-load drift during the run lands on all configurations equally
/// and the derived speedup ratios stay honest (a sequential per-config loop
/// would charge whichever config ran while the machine was busy).
std::vector<StepMedians> measure_interleaved(const std::vector<SpgemmContext*>& ctxs,
                                             const TileMatrix<double>& t, int reps) {
  const std::size_t n = ctxs.size();
  std::vector<std::vector<double>> s2(n), s3(n), core(n);
  for (SpgemmContext* ctx : ctxs) (void)ctx->run(t, t);  // warmup: grow the pools
  for (int r = 0; r < reps; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      const TileSpgemmResult<double> res = ctxs[c]->run(t, t);
      s2[c].push_back(res.timings.step2_ms);
      s3[c].push_back(res.timings.step3_ms);
      core[c].push_back(res.timings.core_ms());
    }
  }
  std::vector<StepMedians> out(n);
  for (std::size_t c = 0; c < n; ++c) {
    out[c] = {median(std::move(s2[c])), median(std::move(s3[c])),
              median(std::move(core[c]))};
  }
  return out;
}

/// Flat kernel-name -> median-ms map; the JSON schema below mirrors it.
using KernelMap = std::map<std::string, double>;

void emit_json(const KernelMap& kernels, int reps, double scale, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "regress: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"schema\": 1,\n  \"reps\": " << reps << ",\n  \"scale\": " << scale
      << ",\n  \"kernels\": {\n";
  std::size_t i = 0;
  for (const auto& [name, ms] : kernels) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", ms);
    out << "    \"" << name << "\": " << buf << (++i < kernels.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
  std::printf("regress: wrote %zu kernel medians to %s\n", kernels.size(), path.c_str());
}

/// Minimal reader for the flat schema emit_json writes: every
/// `"name": <number>` pair after the "kernels" key. Tolerant of
/// whitespace/indentation, not a general JSON parser.
bool parse_baseline(const std::string& path, KernelMap& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "regress: cannot read baseline %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::size_t kernels_at = text.find("\"kernels\"");
  if (kernels_at == std::string::npos) {
    std::fprintf(stderr, "regress: %s has no \"kernels\" object\n", path.c_str());
    return false;
  }
  std::size_t pos = kernels_at + 9;
  while (true) {
    const std::size_t q0 = text.find('"', pos);
    if (q0 == std::string::npos) break;
    const std::size_t q1 = text.find('"', q0 + 1);
    if (q1 == std::string::npos) break;
    const std::size_t colon = text.find(':', q1);
    if (colon == std::string::npos) break;
    char* end = nullptr;
    const double v = std::strtod(text.c_str() + colon + 1, &end);
    if (end != text.c_str() + colon + 1) {
      out[text.substr(q0 + 1, q1 - q0 - 1)] = v;
    }
    pos = colon + 1;
  }
  return !out.empty();
}

int compare_to_baseline(const KernelMap& current, const std::string& path, double tol,
                        double min_ms) {
  KernelMap baseline;
  if (!parse_baseline(path, baseline)) return 1;
  int regressions = 0;
  int missing = 0;
  int skipped = 0;
  for (const auto& [name, base_ms] : baseline) {
    const auto it = current.find(name);
    if (it == current.end()) {
      // A baseline recorded on a wider host may carry vector-level kernels
      // this machine cannot execute; that is a capability gap, not a
      // regression — skip with a notice instead of failing the gate.
      const bool avx2_gap = name.find(".avx2.") != std::string::npos &&
                            !simd::level_available(simd::Level::kAvx2);
      const bool avx512_gap = name.find(".avx512.") != std::string::npos &&
                              !simd::level_available(simd::Level::kAvx512);
      if (avx2_gap || avx512_gap) {
        std::printf("  %-28s SKIPPED (SIMD level unavailable on this host)\n",
                    name.c_str());
        ++skipped;
        continue;
      }
      std::fprintf(stderr, "regress: kernel '%s' is in the baseline but was not measured "
                           "(refresh %s?)\n", name.c_str(), path.c_str());
      ++missing;
      continue;
    }
    const double ratio = base_ms > 0.0 ? it->second / base_ms : 1.0;
    // Sub-min_ms kernels are dominated by dispatch jitter, where a relative
    // gate only measures the machine; report them ungated.
    const bool gated = base_ms >= min_ms;
    const bool slow = gated && ratio > 1.0 + tol;
    std::printf("  %-28s base %10.4f ms  now %10.4f ms  (%+6.1f%%)%s\n", name.c_str(),
                base_ms, it->second, (ratio - 1.0) * 100.0,
                slow ? "  REGRESSION" : (gated ? "" : "  (ungated: below min-ms)"));
    if (slow) ++regressions;
  }
  if (regressions > 0 || missing > 0) {
    std::fprintf(stderr,
                 "regress: %d kernel(s) regressed beyond %.0f%% (and %d missing) vs %s\n",
                 regressions, tol * 100.0, missing, path.c_str());
    return 1;
  }
  std::printf("regress: all %zu kernels within %.0f%% of %s (%d skipped: unavailable SIMD)\n",
              baseline.size() - static_cast<std::size_t>(skipped), tol * 100.0,
              path.c_str(), skipped);
  return 0;
}

}  // namespace

int run_regress(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.bad) {
    std::fprintf(stderr,
                 "usage: bench_micro_kernels --regress [--emit FILE] [--compare FILE]\n"
                 "         [--tolerance F] [--min-ms MS] [--assert-speedup R]\n"
                 "         [--reps N] [--scale S]\n");
    return 2;
  }

  const std::vector<SuiteCase> suite = make_suite(args.scale);
  KernelMap kernels;
  std::vector<double> speedups;

  // "packed" is pinned to the SWAR level so the step2.packed.* baseline
  // names keep measuring the same kernel on every host; the vector levels
  // get their own step2.<level>.* entries, measured only where available.
  SpgemmContext packed(SpgemmContext::Config{}.with_simd_level(simd::Level::kSwar));
  SpgemmContext scalar(
      SpgemmContext::Config{}.with_symbolic(SymbolicKernel::kScalar));
  SpgemmContext cached(SpgemmContext::Config{}.with_pair_cache(true));
  SpgemmContext tuned(SpgemmContext::Config{}.with_fused_path(true));
  SpgemmContext avx2(SpgemmContext::Config{}.with_simd_level(simd::Level::kAvx2));
  SpgemmContext avx512(SpgemmContext::Config{}.with_simd_level(simd::Level::kAvx512));
  const bool has_avx2 = simd::level_available(simd::Level::kAvx2);
  const bool has_avx512 = simd::level_available(simd::Level::kAvx512);

  std::vector<SpgemmContext*> ctxs = {&packed, &scalar, &cached, &tuned};
  if (has_avx2) ctxs.push_back(&avx2);
  if (has_avx512) ctxs.push_back(&avx512);

  std::printf("regress: %zu matrices, %d reps, scale %.2f, simd up to %s\n", suite.size(),
              args.reps, args.scale, simd::level_name(simd::detected_level()));
  for (const SuiteCase& sc : suite) {
    const TileMatrix<double> t = csr_to_tile(sc.csr);
    const std::vector<StepMedians> m = measure_interleaved(ctxs, t, args.reps);
    const StepMedians& m_packed = m[0];
    const StepMedians& m_scalar = m[1];
    const StepMedians& m_cached = m[2];
    const StepMedians& m_tuned = m[3];

    kernels["step2.packed." + sc.name] = m_packed.step2_ms;
    kernels["step2.scalar." + sc.name] = m_scalar.step2_ms;
    kernels["step3.recompute." + sc.name] = m_packed.step3_ms;
    kernels["step3.cached." + sc.name] = m_cached.step3_ms;
    kernels["e2e.tuned." + sc.name] = m_tuned.core_ms;
    std::size_t next = 4;
    if (has_avx2) {
      kernels["step2.avx2." + sc.name] = m[next].step2_ms;
      kernels["step3.avx2." + sc.name] = m[next].step3_ms;
      ++next;
    }
    if (has_avx512) {
      kernels["step2.avx512." + sc.name] = m[next].step2_ms;
      kernels["step3.avx512." + sc.name] = m[next].step3_ms;
      ++next;
    }

    const double speedup =
        m_packed.step2_ms > 0.0 ? m_scalar.step2_ms / m_packed.step2_ms : 1.0;
    speedups.push_back(speedup);
    std::printf("  %-14s step2 scalar %8.4f ms  packed %8.4f ms  (%.2fx)   "
                "step3 recompute %8.4f ms  cached %8.4f ms\n",
                sc.name.c_str(), m_scalar.step2_ms, m_packed.step2_ms, speedup,
                m_packed.step3_ms, m_cached.step3_ms);
    if (has_avx2 || has_avx512) {
      const StepMedians& m_best = m[ctxs.size() - 1];
      std::printf("  %-14s step2 %-6s %8.4f ms  (%.2fx over packed)   step3 %8.4f ms\n",
                  "", simd::level_name(simd::detected_level()), m_best.step2_ms,
                  m_best.step2_ms > 0.0 ? m_packed.step2_ms / m_best.step2_ms : 1.0,
                  m_best.step3_ms);
    }
  }

  const double median_speedup = median(speedups);
  std::printf("regress: suite-median step2 speedup (word-packed vs scalar): %.2fx\n",
              median_speedup);

  if (!args.emit_path.empty()) emit_json(kernels, args.reps, args.scale, args.emit_path);

  int rc = 0;
  if (args.assert_speedup > 0.0 && median_speedup < args.assert_speedup) {
    std::fprintf(stderr, "regress: step2 median speedup %.2fx is below the %.2fx gate\n",
                 median_speedup, args.assert_speedup);
    rc = 1;
  }
  if (!args.compare_path.empty()) {
    if (compare_to_baseline(kernels, args.compare_path, args.tolerance, args.min_ms) != 0) {
      rc = 1;
    }
  }
  return rc;
}

}  // namespace tsg::bench
