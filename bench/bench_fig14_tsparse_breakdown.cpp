// Figure 14: runtime breakdown of tSparse vs TileSpGEMM (half precision) on
// the 16-matrix dataset — step1/step2/step3/memory-allocation per method.
#include <iostream>

#include "bench_common.h"
#include "baselines/tsparse.h"
#include "common/half.h"
#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "gen/representative.h"

int main(int argc, char** argv) {
  using namespace tsg;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  bench::print_header("Fig. 14",
                      "runtime breakdown (ms): tSparse (left) vs TileSpGEMM (right)");
  Table table({"matrix", "method", "step1", "step2", "step3", "alloc", "total"});

  double ts_alloc_share = 0, tile_alloc_share = 0;
  int counted = 0;
  for (const auto& m : gen::tsparse_suite()) {
    Csr<float> a = gen::cast_values<float>(m.a);
    for (auto& v : a.val) v = static_cast<float>(half(v));

    TsparseTimings ts{};
    bool ts_ok = true;
    try {
      TsparseTimings best{};
      double best_total = -1;
      for (int rep = 0; rep < args.effective_reps(); ++rep) {
        TsparseTimings tm;
        (void)spgemm_tsparse(a, a, &tm);
        if (best_total < 0 || tm.total_ms() < best_total) {
          best = tm;
          best_total = tm.total_ms();
        }
      }
      ts = best;
    } catch (const std::exception&) {
      ts_ok = false;
    }

    const TileMatrix<float> ta = csr_to_tile(a);
    TileSpgemmTimings tile{};
    double best_total = -1;
    for (int rep = 0; rep < args.effective_reps(); ++rep) {
      const auto res = tile_spgemm(ta, ta);
      if (best_total < 0 || res.timings.total_ms() < best_total) {
        tile = res.timings;
        best_total = tile.total_ms();
      }
    }

    if (ts_ok) {
      table.add_row({m.name, "tSparse", fmt(ts.step1_ms, 3), fmt(ts.step2_ms, 3),
                     fmt(ts.step3_ms, 3), fmt(ts.alloc_ms, 3), fmt(ts.total_ms(), 3)});
      ts_alloc_share += ts.total_ms() > 0 ? ts.alloc_ms / ts.total_ms() : 0;
    } else {
      table.add_row({m.name, "tSparse", "-", "-", "-", "-", "failed"});
    }
    table.add_row({"", "TileSpGEMM", fmt(tile.step1_ms, 3), fmt(tile.step2_ms, 3),
                   fmt(tile.step3_ms, 3), fmt(tile.alloc_ms, 3), fmt(tile.total_ms(), 3)});
    tile_alloc_share += tile.total_ms() > 0 ? tile.alloc_ms / tile.total_ms() : 0;
    ++counted;
  }
  bench::emit(table, args);
  std::cout << "mean allocation share: tSparse " << fmt(100.0 * ts_alloc_share / counted, 1)
            << "%, TileSpGEMM " << fmt(100.0 * tile_alloc_share / counted, 1) << "%\n";
  std::cout << "paper shape: tSparse's 'memory allocation' phase takes a larger\n"
               "share (its dense C tiles are resized repeatedly); on hyper-sparse\n"
               "tiles (webbase-1M, cage12) TileSpGEMM's steps 2+3 are much cheaper\n"
               "because sparse tile math skips the wasted dense MACs.\n";
  args.write_metrics();
  return 0;
}
