// Precision study: TileSpGEMM in double (the paper's Figs. 6-9 mode),
// single, and half-rounded-input single (the Fig. 13 tSparse comparison
// mode), plus the numeric deviation each precision incurs against the
// double-precision result.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "common/half.h"
#include "common/timer.h"
#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "gen/representative.h"
#include "matrix/stats.h"

namespace {

using namespace tsg;

template <class T>
double time_spgemm(const Csr<T>& a, int reps) {
  const TileMatrix<T> t = csr_to_tile(a);
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    (void)tile_spgemm(t, t);
    best = std::min(best, timer.milliseconds());
  }
  return best;
}

/// Max relative deviation of C_T from the double-precision C, matched by
/// position (identical structure is guaranteed: the symbolic phases are
/// value-independent).
template <class T>
double max_rel_error(const Csr<double>& cd, const Csr<T>& ct) {
  double worst = 0.0;
  for (std::size_t k = 0; k < cd.val.size(); ++k) {
    const double expected = cd.val[k];
    const double got = static_cast<double>(ct.val[k]);
    const double scale = std::max(std::fabs(expected), 1e-30);
    worst = std::max(worst, std::fabs(expected - got) / scale);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  bench::print_header("Precision study",
                      "TileSpGEMM double vs single vs half-input single");
  Table table({"matrix", "fp64 ms", "fp32 ms", "fp16-in ms", "fp32 max rel err",
               "fp16-in max rel err"});

  for (const auto& m : gen::representative_suite()) {
    if (m.a.nnz() > 250000) continue;  // keep the sweep quick
    const Csr<double>& ad = m.a;
    const Csr<float> af = gen::cast_values<float>(ad);
    Csr<float> ah = af;
    for (auto& v : ah.val) v = static_cast<float>(half(v));

    const Csr<double> cd = spgemm_tile(ad, ad);
    const Csr<float> cf = spgemm_tile(af, af);
    const Csr<float> ch = spgemm_tile(ah, ah);

    table.add_row({m.name, fmt(time_spgemm(ad, args.effective_reps())),
                   fmt(time_spgemm(af, args.effective_reps())),
                   fmt(time_spgemm(ah, args.effective_reps())),
                   fmt(std::log10(std::max(max_rel_error(cd, cf), 1e-30)), 1) + " (log10)",
                   fmt(std::log10(std::max(max_rel_error(cd, ch), 1e-30)), 1) + " (log10)"});
  }
  bench::emit(table, args);
  std::cout << "expected: fp32 errors ~1e-6, fp16-input errors ~1e-3 (inputs\n"
               "rounded to 11-bit mantissas, fp32 accumulation), structure\n"
               "identical across precisions because the symbolic phases never\n"
               "look at values.\n";
  args.write_metrics();
  return 0;
}
