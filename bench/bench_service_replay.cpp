// Service replay bench: an open-loop arrival process over a mixed matrix
// suite, driven through SpgemmService. Reports end-to-end latency (p50 /
// p99), throughput, peak queue depth, and the admission outcome mix
// (admitted / degraded / queue-full / rejected) — the numbers the service
// layer exists to control. Run with a deliberately undersized --budget-mb
// to exercise admission control: every request must still end in a
// completed future, a bit-identical degraded run, or a structured
// rejection — never an abort.
//
// With --chaos SPEC (grammar in src/chaos/chaos.h) the replay additionally
// injects a deterministic fault schedule derived from --seed: latency at
// the submit/pop sites, forced cancellations, deadline pressure, and
// allocation faults. --timeout-ms and --retries bind per-request
// SubmitOptions so the eviction/deadline/retry machinery runs under load.
// The lifecycle counters (deadline_miss / evicted / retried /
// watchdog_kills) are reported in the table and the metrics JSON, and the
// bench exits nonzero on any failure mode the armed chaos plan does not
// explain — that is the check scripts/check.sh chaos gates on.
//
// Observability hooks (PR 8): --trace FILE turns on the trace collector and
// writes the request-id-tagged Perfetto JSON at exit; --prom FILE writes a
// Prometheus text-exposition snapshot of the final registry; --flight-dir DIR
// arms the flight recorder (fatal signals and unexplained chaos outcomes dump
// flight_<ts>.json there); --slo-p99-ms MS asserts the windowed p99 against
// the target via obs::SloMonitor and exits nonzero on violation, with the
// burn counters (slo.p99_burn / slo.error_burn) landing in the metrics JSON.
//
//   bench_service_replay [--csv] [--metrics FILE] [--requests N]
//                        [--rate R] [--workers N] [--queue-cap N]
//                        [--budget-mb MB] [--no-degrade] [--seed S]
//                        [--chaos SPEC] [--timeout-ms MS] [--retries N]
//                        [--stuck-ms MS] [--slo-p99-ms MS] [--trace FILE]
//                        [--prom FILE] [--flight-dir DIR]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "chaos/chaos.h"
#include "common/memory.h"
#include "common/random.h"
#include "gen/representative.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "service/spgemm_service.h"

namespace tsg::bench {
namespace {

using service::Admission;
using service::SpgemmRequest;
using service::SpgemmService;
using service::Ticket;

struct ReplayArgs {
  bool csv = false;
  std::string metrics_path;
  int requests = 48;
  double rate = 400.0;  ///< open-loop arrivals per second
  int workers = 2;
  std::size_t queue_cap = 16;
  std::size_t budget_mb = 0;  ///< 0 = ambient TSG_DEVICE_MEM_MB / default
  bool degrade = true;
  std::uint64_t seed = 0x5eedu;
  std::string chaos_spec;  ///< empty: no injection (byte-identical fast path)
  long timeout_ms = 0;     ///< 0: no per-request deadline
  int retries = 0;         ///< SubmitOptions::max_retries for every request
  long stuck_ms = 0;       ///< 0: watchdog disabled
  long slo_p99_ms = 0;     ///< 0: no latency SLO assertion
  std::string trace_path;  ///< empty: tracing stays off
  std::string prom_path;   ///< empty: no Prometheus snapshot
  std::string flight_dir;  ///< empty: flight recorder keeps buffering, never dumps

  static ReplayArgs parse(int argc, char** argv) {
    ReplayArgs args;
    for (int i = 1; i < argc; ++i) {
      const auto next_int = [&](long min_v) {
        const long v = i + 1 < argc ? std::atol(argv[++i]) : min_v - 1;
        if (v < min_v) {
          std::cerr << "bench_service_replay: bad value for " << argv[i - 1] << "\n";
          std::exit(2);
        }
        return v;
      };
      if (std::strcmp(argv[i], "--csv") == 0) {
        args.csv = true;
      } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
        args.metrics_path = argv[++i];
      } else if (std::strcmp(argv[i], "--requests") == 0) {
        args.requests = static_cast<int>(next_int(1));
      } else if (std::strcmp(argv[i], "--rate") == 0) {
        args.rate = static_cast<double>(next_int(1));
      } else if (std::strcmp(argv[i], "--workers") == 0) {
        args.workers = static_cast<int>(next_int(1));
      } else if (std::strcmp(argv[i], "--queue-cap") == 0) {
        args.queue_cap = static_cast<std::size_t>(next_int(1));
      } else if (std::strcmp(argv[i], "--budget-mb") == 0) {
        args.budget_mb = static_cast<std::size_t>(next_int(1));
      } else if (std::strcmp(argv[i], "--no-degrade") == 0) {
        args.degrade = false;
      } else if (std::strcmp(argv[i], "--seed") == 0) {
        args.seed = static_cast<std::uint64_t>(next_int(0));
      } else if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc) {
        args.chaos_spec = argv[++i];
      } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
        args.timeout_ms = next_int(1);
      } else if (std::strcmp(argv[i], "--retries") == 0) {
        args.retries = static_cast<int>(next_int(0));
      } else if (std::strcmp(argv[i], "--stuck-ms") == 0) {
        args.stuck_ms = next_int(1);
      } else if (std::strcmp(argv[i], "--slo-p99-ms") == 0) {
        args.slo_p99_ms = next_int(1);
      } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
        args.trace_path = argv[++i];
      } else if (std::strcmp(argv[i], "--prom") == 0 && i + 1 < argc) {
        args.prom_path = argv[++i];
      } else if (std::strcmp(argv[i], "--flight-dir") == 0 && i + 1 < argc) {
        args.flight_dir = argv[++i];
      } else {
        std::cerr << "usage: bench_service_replay [--csv] [--metrics FILE] "
                     "[--requests N] [--rate R] [--workers N] [--queue-cap N] "
                     "[--budget-mb MB] [--no-degrade] [--seed S] [--chaos SPEC] "
                     "[--timeout-ms MS] [--retries N] [--stuck-ms MS] "
                     "[--slo-p99-ms MS] [--trace FILE] [--prom FILE] "
                     "[--flight-dir DIR]\n";
        std::exit(2);
      }
    }
    return args;
  }
};

using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(b - a)
      .count();
}

/// Nearest-rank percentile of an (unsorted) sample set; 0 when empty.
double percentile_us(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

int run(const ReplayArgs& args) {
  // Mixed tenant workload: the Table-2 representative suite, shuffled by
  // the arrival process (each request draws a random suite member).
  std::vector<std::shared_ptr<const Csr<double>>> suite;
  for (gen::NamedMatrix& m : gen::representative_suite()) {
    suite.push_back(std::make_shared<const Csr<double>>(std::move(m.a)));
  }

  // Parse and arm the chaos plan before the service exists so its workers
  // observe a stable plan for their whole lifetime. An empty spec leaves
  // the engine disarmed: the no-chaos replay path is byte-identical to the
  // pre-chaos bench (that is what the bench-regression gate compares).
  chaos::ChaosPlan plan;
  if (!args.chaos_spec.empty()) {
    Expected<chaos::ChaosPlan> parsed = chaos::parse_chaos_spec(args.chaos_spec, args.seed);
    if (!parsed.ok()) {
      std::cerr << "bench_service_replay: " << parsed.status().message() << "\n";
      return 2;
    }
    plan = *parsed;
  }
  std::optional<chaos::ChaosScope> chaos_scope;
  if (plan.enabled()) chaos_scope.emplace(plan);

  // Observability plumbing, armed before the service exists so the very
  // first lifecycle event (service.request.queued) is captured.
  if (!args.flight_dir.empty()) {
    obs::FlightRecorder::instance().set_directory(args.flight_dir);
    obs::FlightRecorder::install_signal_handlers();
  }
  if (!args.trace_path.empty()) obs::TraceCollector::instance().set_enabled(true);
  obs::SloConfig slo_cfg = obs::SloConfig::from_env();
  if (args.slo_p99_ms > 0) slo_cfg.target_p99_ms = static_cast<double>(args.slo_p99_ms);
  std::optional<obs::SloMonitor> slo;
  if (slo_cfg.any()) slo.emplace(slo_cfg);  // window opens here, pre-replay

  SpgemmService::Config cfg = SpgemmService::Config::from_env();
  cfg.with_workers(args.workers)
      .with_queue_capacity(args.queue_cap)
      .with_device_mem_mb(args.budget_mb)
      .with_degradation(args.degrade);
  if (args.stuck_ms > 0) cfg.with_stuck_after(std::chrono::milliseconds(args.stuck_ms));
  SpgemmService svc(cfg);

  struct InFlight {
    Ticket ticket;
    Clock::time_point submitted;
  };
  std::vector<InFlight> accepted;
  accepted.reserve(static_cast<std::size_t>(args.requests));
  std::int64_t queue_full = 0, rejected = 0, other_refusals = 0;
  std::int64_t degraded = 0;
  std::size_t peak_depth = 0;

  // Open-loop arrivals: exponential inter-arrival gaps at `rate` per
  // second, independent of service progress (a slow service does not slow
  // the tenants down — that is what fills the queue and exercises
  // backpressure).
  Xoshiro256 rng(args.seed);
  const Clock::time_point start = Clock::now();
  Clock::time_point next_arrival = start;
  for (int i = 0; i < args.requests; ++i) {
    const double gap_s = -std::log1p(-rng.next_double()) / args.rate;
    next_arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(gap_s));
    std::this_thread::sleep_until(next_arrival);

    SpgemmRequest req{suite[rng.next_below(suite.size())]};
    req.tag = static_cast<std::uint64_t>(i);
    // Deadlines are relative to submission, so the options are rebuilt per
    // request rather than hoisted out of the loop.
    service::SubmitOptions opts;
    if (args.timeout_ms > 0) opts.with_timeout(std::chrono::milliseconds(args.timeout_ms));
    opts.with_retries(args.retries);
    const Clock::time_point submitted = Clock::now();
    Expected<Ticket> ticket = svc.try_submit(std::move(req), opts);
    peak_depth = std::max(peak_depth, svc.queue_depth());
    if (ticket.ok()) {
      if (ticket->admission == Admission::kDegraded) ++degraded;
      accepted.push_back({std::move(*ticket), submitted});
    } else if (ticket.status().code() == StatusCode::kQueueFull) {
      ++queue_full;
    } else if (ticket.status().code() == StatusCode::kRejected) {
      ++rejected;
    } else {
      ++other_refusals;  // malformed/shutdown: none expected in this replay
    }
  }

  // Collect in submission order. get() returns the moment a future is
  // ready, so with FIFO dispatch the recorded completion times are tight;
  // a request that finished out of order is stamped when the collector
  // reaches it (a small upper-bound bias, never an undercount).
  std::vector<double> latency_us;
  latency_us.reserve(accepted.size());
  std::int64_t completed = 0, failed = 0, deadline_missed = 0, force_cancelled = 0;
  for (InFlight& f : accepted) {
    try {
      const SpgemmRunReport report = f.ticket.result.get();
      latency_us.push_back(us_between(f.submitted, Clock::now()));
      ++completed;
      (void)report;
    } catch (const Error& e) {
      switch (e.status().code()) {
        case StatusCode::kDeadlineExceeded: ++deadline_missed; break;
        case StatusCode::kCancelled: ++force_cancelled; break;
        // Any other structured failure (e.g. BudgetExceeded with
        // --no-degrade, injected allocation faults past the retry budget).
        default: ++failed; break;
      }
    }
  }
  const double wall_s =
      us_between(start, Clock::now()) / 1e6;
  svc.shutdown();

  const double p50 = percentile_us(latency_us, 50.0);
  const double p99 = percentile_us(latency_us, 99.0);

  // Publish the replay's headline numbers as gauges so --metrics carries
  // them next to the service's own counters/histograms in one JSON.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  const obs::MetricsSnapshot snap = reg.snapshot();
  const std::int64_t evicted = snap.counter("service.evicted");
  const std::int64_t retried = snap.counter("service.retried");
  const std::int64_t watchdog_kills = snap.counter("service.watchdog_kills");
  const auto publish = [&reg](const char* name, std::int64_t value) {
    auto state = std::make_shared<std::int64_t>(value);
    reg.register_gauge(name, [state] { return *state; });
  };
  publish("service.replay.p50_us", static_cast<std::int64_t>(p50));
  publish("service.replay.p99_us", static_cast<std::int64_t>(p99));
  publish("service.replay.peak_queue_depth", static_cast<std::int64_t>(peak_depth));
  publish("service.replay.completed", completed);
  publish("service.replay.failed", failed);
  publish("service.replay.queue_full", queue_full);
  publish("service.replay.rejected", rejected);
  publish("service.replay.deadline_miss", deadline_missed);
  publish("service.replay.cancelled", force_cancelled);
  publish("service.replay.evicted", evicted);
  publish("service.replay.retried", retried);
  publish("service.replay.watchdog_kills", watchdog_kills);

  Table t({"requests", "completed", "degraded", "queue_full", "rejected", "failed",
           "p50_ms", "p99_ms", "req_per_s", "peak_depth"});
  t.add_row({std::to_string(args.requests), std::to_string(completed),
             std::to_string(degraded), std::to_string(queue_full),
             std::to_string(rejected), std::to_string(failed), fmt(p50 / 1000.0),
             fmt(p99 / 1000.0),
             fmt(wall_s > 0 ? static_cast<double>(completed) / wall_s : 0.0),
             std::to_string(peak_depth)});
  if (!args.csv) {
    print_header("Service replay (open-loop arrivals over SpgemmService)",
                 "service layer — not a paper figure");
    std::cout << "workers=" << args.workers << " queue_cap=" << args.queue_cap
              << " rate=" << args.rate << "/s budget=" << svc.budget_bytes() / (1 << 20)
              << " MB degrade=" << (args.degrade ? "on" : "off");
    if (plan.enabled()) {
      std::cout << " chaos='" << args.chaos_spec << "' seed=" << args.seed;
    }
    if (args.timeout_ms > 0) std::cout << " timeout=" << args.timeout_ms << "ms";
    if (args.retries > 0) std::cout << " retries=" << args.retries;
    std::cout << "\n\n";
  }
  BenchArgs emit_args;
  emit_args.csv = args.csv;
  emit(t, emit_args);

  // Lifecycle outcomes (the request-hardening machinery), plus what the
  // chaos engine actually injected so a replay is auditable from its seed.
  chaos::ChaosEngine& engine = chaos::ChaosEngine::instance();
  Table lifecycle({"deadline_miss", "cancelled", "evicted", "retried", "watchdog_kills",
                   "chaos_latency", "chaos_cancels", "chaos_pressure"});
  lifecycle.add_row({std::to_string(deadline_missed), std::to_string(force_cancelled),
                     std::to_string(evicted), std::to_string(retried),
                     std::to_string(watchdog_kills),
                     std::to_string(engine.injected_latencies()),
                     std::to_string(engine.forced_cancels()),
                     std::to_string(engine.deadline_pressures())});
  emit(lifecycle, emit_args);

  // Close the SLO window over the whole replay and publish the verdict next
  // to the replay gauges. The burn counters the monitor increments on
  // violation (slo.p99_burn / slo.error_burn) ride into --metrics through
  // the registry itself.
  bool slo_violated = false;
  if (slo) {
    const obs::SloMonitor::Report slo_report = slo->observe();
    publish("service.replay.slo_target_p99_ms",
            static_cast<std::int64_t>(slo_cfg.target_p99_ms));
    publish("service.replay.slo_p99_ms", static_cast<std::int64_t>(slo_report.p99_ms));
    publish("service.replay.slo_violated", slo_report.ok() ? 0 : 1);
    if (!slo_report.ok()) {
      slo_violated = true;
      std::cerr << "bench_service_replay: SLO violated: p99=" << fmt(slo_report.p99_ms)
                << " ms vs target " << fmt(slo_cfg.target_p99_ms)
                << " ms, error_rate=" << fmt(slo_report.error_rate) << " (seed="
                << args.seed << ")\n";
    }
  }

  // Exporter artifacts are written even on a red run — a failing replay is
  // exactly when the trace and the Prometheus snapshot are worth reading.
  if (!args.trace_path.empty()) {
    std::ofstream trace_out(args.trace_path);
    if (trace_out) {
      obs::TraceCollector::instance().write_chrome_trace(trace_out);
    } else {
      std::cerr << "bench_service_replay: cannot write trace to " << args.trace_path
                << "\n";
    }
  }
  if (!args.prom_path.empty() && !obs::write_prometheus_file(args.prom_path)) {
    std::cerr << "bench_service_replay: cannot write Prometheus snapshot to "
              << args.prom_path << "\n";
  }

  // The service contract this bench exists to demonstrate: under any
  // budget (and any armed chaos plan), every accepted request resolves and
  // nothing aborts. Every failure mode must be explained — by a structured
  // refusal, the configured deadline, or the armed plan. Anything else is
  // a red run, reproducible from the echoed seed — and worth a flight dump
  // of the last events leading up to it.
  const auto unexplained = [&](const char* what) {
    (void)obs::FlightRecorder::instance().dump("chaos_unexplained");
    std::cerr << "bench_service_replay: " << what << " (seed=" << args.seed << ")\n";
  };
  if (other_refusals > 0) {
    unexplained("unexpected refusal(s)");
    return 1;
  }
  const bool deadlines_possible =
      args.timeout_ms > 0 || plan.deadline_p > 0.0 || args.stuck_ms > 0;
  if (deadline_missed > 0 && !deadlines_possible) {
    unexplained("deadline miss(es) with no deadline configured");
    return 1;
  }
  if (force_cancelled > 0 && plan.cancel_p <= 0.0) {
    unexplained("cancellation(s) with no cancel clause armed");
    return 1;
  }
  if (args.degrade && plan.alloc_rate <= 0.0 && failed > 0) {
    unexplained("request(s) failed despite degradation being enabled");
    return 1;
  }
  return slo_violated ? 1 : 0;
}

}  // namespace
}  // namespace tsg::bench

int main(int argc, char** argv) {
  const tsg::bench::ReplayArgs args = tsg::bench::ReplayArgs::parse(argc, argv);
  const int rc = tsg::bench::run(args);
  if (!args.metrics_path.empty()) {
    tsg::bench::BenchArgs ba;
    ba.metrics_path = args.metrics_path;
    ba.write_metrics();
  }
  return rc;
}
