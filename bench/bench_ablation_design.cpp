// Ablation bench for the design choices Section 3.3 argues for, measured
// end-to-end on the representative suite (the kernel-level view lives in
// bench_micro_kernels):
//   1. binary-search vs merge intersection in steps 2/3
//   2. adaptive vs always-sparse vs always-dense accumulator
//   3. sensitivity to the tnnz threshold around the paper's 192
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "common/timer.h"
#include "core/tile_spgemm.h"
#include "gen/representative.h"

namespace {

using namespace tsg;
using bench::BenchArgs;

double time_with(const TileMatrix<double>& t, const TileSpgemmOptions& opt, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    (void)tile_spgemm(t, t, opt);
    best = std::min(best, timer.milliseconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const auto suite = gen::representative_suite();

  bench::print_header("Ablation 1: set intersection",
                      "Section 3.3: 'the merging primitive is often slower than binary "
                      "search'");
  Table t1({"matrix", "binary search ms", "merge ms", "merge/binary"});
  double geo = 0;
  int counted = 0;
  for (const auto& m : suite) {
    const TileMatrix<double> t = csr_to_tile(m.a);
    TileSpgemmOptions bs, mg;
    mg.intersect = IntersectMethod::kMerge;
    const double ms_bs = time_with(t, bs, args.effective_reps());
    const double ms_mg = time_with(t, mg, args.effective_reps());
    t1.add_row({m.name, fmt(ms_bs), fmt(ms_mg), fmt(ms_mg / ms_bs) + "x"});
    geo += std::log(ms_mg / ms_bs);
    ++counted;
  }
  bench::emit(t1, args);
  std::cout << "geomean merge/binary-search ratio: " << fmt(std::exp(geo / counted))
            << "x (paper found binary search faster)\n";

  bench::print_header("Ablation 2: accumulator policy",
                      "Section 3.3: adaptive sparse/dense selection at tnnz=192");
  Table t2({"matrix", "adaptive ms", "always sparse ms", "always dense ms"});
  for (const auto& m : suite) {
    const TileMatrix<double> t = csr_to_tile(m.a);
    TileSpgemmOptions ad, sp, de;
    sp.accumulator = AccumulatorPolicy::kAlwaysSparse;
    de.accumulator = AccumulatorPolicy::kAlwaysDense;
    t2.add_row({m.name, fmt(time_with(t, ad, args.effective_reps())),
                fmt(time_with(t, sp, args.effective_reps())),
                fmt(time_with(t, de, args.effective_reps()))});
  }
  bench::emit(t2, args);

  bench::print_header("Ablation 2b: pair caching (deviates from the paper)",
                      "recompute the step-3 intersection (paper, zero global state) "
                      "vs cache step-2 pairs");
  Table t2b({"matrix", "recompute ms", "cached ms", "cached/recompute"});
  for (const auto& m : suite) {
    const TileMatrix<double> t = csr_to_tile(m.a);
    TileSpgemmOptions recompute, cached;
    cached.cache_pairs = true;
    const double ms_r = time_with(t, recompute, args.effective_reps());
    const double ms_c = time_with(t, cached, args.effective_reps());
    t2b.add_row({m.name, fmt(ms_r), fmt(ms_c), fmt(ms_c / ms_r) + "x"});
  }
  bench::emit(t2b, args);

  bench::print_header("Ablation 3: tnnz threshold sweep",
                      "the 75% rule: dense accumulation wins above ~192 of 256 nonzeros");
  Table t3({"tnnz", "SiO2 ms", "gupta3 ms", "pdb1HYS ms", "webbase-1M ms"});
  std::vector<const gen::NamedMatrix*> picks;
  for (const auto& m : suite) {
    if (m.name == "SiO2" || m.name == "gupta3" || m.name == "pdb1HYS" ||
        m.name == "webbase-1M") {
      picks.push_back(&m);
    }
  }
  for (index_t tnnz : {0, 64, 128, 192, 224, 255}) {
    std::vector<std::string> cells = {std::to_string(tnnz)};
    for (const auto* m : picks) {
      const TileMatrix<double> t = csr_to_tile(m->a);
      TileSpgemmOptions opt;
      opt.tnnz = tnnz;
      cells.push_back(fmt(time_with(t, opt, args.effective_reps())));
    }
    t3.add_row(cells);
  }
  bench::emit(t3, args);
  args.write_metrics();
  return 0;
}
