// Figure 6: double-precision performance of C = A^2 and C = A*A^T over the
// benchmark suite for all five methods, with per-method linear regression
// of GFlops against log10(compression rate), win counts, maximum speedups,
// and the scalability section (thread scaling stands in for the paper's
// RTX 3060 -> 3090 device scaling; see DESIGN.md).
#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "common/parallel.h"
#include "gen/suite.h"
#include "harness/regression.h"

namespace {

using namespace tsg;
using bench::BenchArgs;

void run_op(const std::vector<gen::NamedMatrix>& suite, SpgemmOp op, const char* op_name,
            const BenchArgs& args) {
  const auto& algos = paper_algorithms();
  Table table([&] {
    std::vector<std::string> headers = {"matrix", "rate"};
    for (const auto& a : algos) headers.push_back(a.name + " GF");
    return headers;
  }());

  std::map<std::string, std::vector<double>> gf_by_algo;
  std::map<std::string, std::vector<double>> lograte_by_algo;
  std::map<std::string, int> wins;        // matrices where TileSpGEMM beats it
  std::map<std::string, double> max_speedup;
  std::map<std::string, int> completed;

  std::vector<Measurement> all;
  for (const auto& m : suite) {
    std::vector<Measurement> row;
    for (const auto& algo : algos) row.push_back(measure(m, algo, op, args.effective_reps()));
    const Measurement& tile = row.back();
    all.insert(all.end(), row.begin(), row.end());

    std::vector<std::string> cells = {m.name, fmt(tile.compression_rate, 2)};
    for (const auto& r : row) cells.push_back(bench::gflops_or_fail(r));
    table.add_row(cells);

    for (const auto& r : row) {
      if (!r.ok) continue;
      completed[r.algorithm]++;
      gf_by_algo[r.algorithm].push_back(r.gflops);
      lograte_by_algo[r.algorithm].push_back(std::log10(std::max(r.compression_rate, 1e-3)));
      if (!tile.ok || r.algorithm == tile.algorithm) continue;
      if (tile.gflops > r.gflops) wins[r.algorithm]++;
      max_speedup[r.algorithm] =
          std::max(max_speedup[r.algorithm], tile.gflops / std::max(r.gflops, 1e-9));
    }
    // A matrix a baseline failed on counts as a win for TileSpGEMM, as in
    // the paper ("no matrix can be computed with cuSPARSE on RTX 3060").
    for (const auto& r : row) {
      if (!r.ok && tile.ok && r.algorithm != tile.algorithm) wins[r.algorithm]++;
    }
  }

  bench::print_header(std::string("Fig. 6 (") + op_name + ")",
                      "Fig. 6 top row: GFlops vs compression rate, 5 methods");
  bench::emit(table, args);

  Table summary({"method", "completed", "mean GF", "Tile wins vs", "max Tile speedup",
                 "regression GF ~ log10(rate)"});
  for (const auto& algo : algos) {
    const auto& gf = gf_by_algo[algo.name];
    const LinearFit fit = linear_fit(lograte_by_algo[algo.name], gf);
    const double mean = gf.empty() ? 0.0 : geometric_mean(gf);
    summary.add_row(
        {algo.name, std::to_string(completed[algo.name]) + "/" + std::to_string(suite.size()),
         fmt(mean),
         algo.is_tile ? "-" : std::to_string(wins[algo.name]) + "/" +
                                  std::to_string(suite.size()),
         algo.is_tile ? "-" : fmt(max_speedup[algo.name]) + "x",
         "slope " + fmt(fit.slope) + ", r2 " + fmt(fit.r2)});
  }
  bench::emit(summary, args);
  print_budget_summary(std::cout, all);
}

void run_scalability(const std::vector<gen::NamedMatrix>& suite, const BenchArgs& args) {
  bench::print_header("Fig. 6 (bottom): scalability",
                      "RTX 3090 / RTX 3060 device scaling -> thread scaling (see DESIGN.md)");
  const int max_threads = num_threads();
  if (max_threads <= 1) {
    std::cout << "single hardware thread available: scaling ratio is 1.00x by\n"
                 "construction; re-run on a multicore host for a meaningful ratio.\n";
  }
  const auto& algos = paper_algorithms();
  Table table({"method", "threads=1 mean GF", "threads=max mean GF", "scaling"});
  // A subset keeps the doubled measurement affordable.
  std::vector<gen::NamedMatrix> subset;
  for (std::size_t i = 0; i < suite.size(); i += 4) {
    subset.push_back({suite[i].name, suite[i].structure, suite[i].symmetric_pattern,
                      suite[i].a});
  }
  for (const auto& algo : algos) {
    std::vector<double> gf1, gfn;
    for (const auto& m : subset) {
      {
        ThreadCountGuard guard(1);
        const Measurement r = measure(m, algo, SpgemmOp::kASquared, args.effective_reps());
        if (r.ok) gf1.push_back(r.gflops);
      }
      {
        ThreadCountGuard guard(max_threads);
        const Measurement r = measure(m, algo, SpgemmOp::kASquared, args.effective_reps());
        if (r.ok) gfn.push_back(r.gflops);
      }
    }
    const double m1 = geometric_mean(gf1), mn = geometric_mean(gfn);
    table.add_row({algo.name, fmt(m1), fmt(mn), fmt(m1 > 0 ? mn / m1 : 0.0) + "x"});
  }
  bench::emit(table, args);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const auto suite = tsg::gen::fig6_suite();
  std::cout << "suite: " << suite.size() << " matrices (see gen/suite.cpp)\n";
  run_op(suite, tsg::SpgemmOp::kASquared, "C=A^2", args);
  run_op(suite, tsg::SpgemmOp::kAAT, "C=AA^T", args);
  run_scalability(suite, args);
  args.write_metrics();
  return 0;
}
