// Kernel-level ablation microbenchmarks (google-benchmark) for the design
// choices Section 3.3 argues for:
//   * binary-search vs merge set intersection (the paper picked binary
//     search after finding merge slower)
//   * sparse vs dense accumulator across output-tile densities (the basis
//     of the tnnz = 192 threshold)
//   * end-to-end sensitivity of TileSpGEMM to the tnnz threshold
//   * CSR->tile conversion throughput (Fig. 12's numerator)
//   * word-packed vs scalar step-2 symbolic kernel (ISSUE 5)
//
// Doubles as the machine-readable bench-regression harness: run with
// `--regress` (see regress_harness.h) to emit/compare BENCH_baseline.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>
#include <vector>

#include "regress_harness.h"

#include "common/random.h"
#include "core/intersect.h"
#include "core/simd_dispatch.h"
#include "core/tile_add.h"
#include "core/tile_convert.h"
#include "core/tile_spgemm.h"
#include "core/tile_spmm.h"
#include "core/tile_spmv.h"
#include "core/tile_transpose.h"
#include "gen/generators.h"

namespace {

using namespace tsg;

// ----------------------------------------------------------- intersection --

struct IntersectFixture {
  std::vector<index_t> a_cols, b_rows;
  std::vector<offset_t> b_ids;

  IntersectFixture(index_t len_a, index_t len_b, double overlap) {
    Xoshiro256 rng(1234);
    index_t va = 0, vb = 0;
    for (index_t i = 0; i < len_a; ++i) {
      a_cols.push_back(va += 1 + static_cast<index_t>(rng.next_below(3)));
    }
    for (index_t i = 0; i < len_b; ++i) {
      if (rng.next_double() < overlap && i < len_a) {
        vb = a_cols[i];
      } else {
        vb += 1 + static_cast<index_t>(rng.next_below(3));
      }
      b_rows.push_back(vb);
    }
    std::sort(b_rows.begin(), b_rows.end());
    b_rows.erase(std::unique(b_rows.begin(), b_rows.end()), b_rows.end());
    b_ids.resize(b_rows.size());
    for (std::size_t i = 0; i < b_ids.size(); ++i) b_ids[i] = static_cast<offset_t>(i);
  }
};

void BM_Intersect(benchmark::State& state, IntersectMethod method) {
  const IntersectFixture fx(static_cast<index_t>(state.range(0)),
                            static_cast<index_t>(state.range(1)), 0.3);
  std::vector<MatchedPair> out;
  for (auto _ : state) {
    out.clear();
    intersect_tiles(fx.a_cols.data(), 0, static_cast<index_t>(fx.a_cols.size()),
                    fx.b_rows.data(), fx.b_ids.data(),
                    static_cast<index_t>(fx.b_rows.size()), method, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.a_cols.size() + fx.b_rows.size()));
}

void BM_IntersectBinary(benchmark::State& s) { BM_Intersect(s, IntersectMethod::kBinarySearch); }
void BM_IntersectMerge(benchmark::State& s) { BM_Intersect(s, IntersectMethod::kMerge); }

BENCHMARK(BM_IntersectBinary)->Args({8, 256})->Args({32, 32})->Args({4, 1024});
BENCHMARK(BM_IntersectMerge)->Args({8, 256})->Args({32, 32})->Args({4, 1024});

// ------------------------------------------------------------ accumulator --

/// One synthetic accumulation task at a given output-tile density: measures
/// the step-3 inner kernels in isolation through the public API by forcing
/// the accumulator policy on a matrix whose C tiles have ~density*256 nnz.
void BM_Accumulator(benchmark::State& state, AccumulatorPolicy policy) {
  const index_t block = static_cast<index_t>(state.range(0));  // C tiles ~ block wide
  const Csr<double> a = gen::dense_blocks(64, block, 77);
  const TileMatrix<double> t = csr_to_tile(a);
  TileSpgemmOptions opt;
  opt.accumulator = policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile_spgemm(t, t, opt).c.nnz());
  }
}

void BM_AccumulatorSparse(benchmark::State& s) {
  BM_Accumulator(s, AccumulatorPolicy::kAlwaysSparse);
}
void BM_AccumulatorDense(benchmark::State& s) {
  BM_Accumulator(s, AccumulatorPolicy::kAlwaysDense);
}

// block=4 -> 16/256 nnz per C tile (sparse wins); block=16 -> 256/256
// (dense wins); block=12 -> 144/256 (near the threshold).
BENCHMARK(BM_AccumulatorSparse)->Arg(4)->Arg(12)->Arg(16);
BENCHMARK(BM_AccumulatorDense)->Arg(4)->Arg(12)->Arg(16);

// -------------------------------------------------------- tnnz sensitivity --

void BM_TnnzThreshold(benchmark::State& state) {
  const Csr<double> a = gen::dense_blocks(48, 14, 78);  // C tiles ~196 nnz
  const TileMatrix<double> t = csr_to_tile(a);
  TileSpgemmOptions opt;
  opt.tnnz = static_cast<index_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile_spgemm(t, t, opt).c.nnz());
  }
}
BENCHMARK(BM_TnnzThreshold)->Arg(0)->Arg(128)->Arg(192)->Arg(255);

// -------------------------------------------------------------- conversion --

void BM_CsrToTile(benchmark::State& state) {
  const Csr<double> a = gen::banded(static_cast<index_t>(state.range(0)), 12, 79);
  for (auto _ : state) {
    benchmark::DoNotOptimize(csr_to_tile(a).num_tiles());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_CsrToTile)->Arg(2000)->Arg(8000);

void BM_TileToCsr(benchmark::State& state) {
  const TileMatrix<double> t =
      csr_to_tile(gen::banded(static_cast<index_t>(state.range(0)), 12, 80));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile_to_csr(t).nnz());
  }
}
BENCHMARK(BM_TileToCsr)->Arg(2000)->Arg(8000);

// ------------------------------------------------------------- end to end --

void BM_TileSpgemmEndToEnd(benchmark::State& state) {
  const Csr<double> a = gen::rmat(static_cast<int>(state.range(0)), 4.0, 81);
  const TileMatrix<double> t = csr_to_tile(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile_spgemm(t, t).c.nnz());
  }
}
BENCHMARK(BM_TileSpgemmEndToEnd)->Arg(10)->Arg(12);

// -------------------------------------------------- tile kernel family --

void BM_TileSpmv(benchmark::State& state) {
  const Csr<double> a = gen::banded(static_cast<index_t>(state.range(0)), 10, 82);
  const TileMatrix<double> t = csr_to_tile(a);
  tracked_vector<double> x(static_cast<std::size_t>(a.cols), 1.0), y;
  for (auto _ : state) {
    tile_spmv(t, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_TileSpmv)->Arg(4000)->Arg(16000);

void BM_TileSpmm(benchmark::State& state) {
  const Csr<double> a = gen::banded(4000, 10, 83);
  const TileMatrix<double> t = csr_to_tile(a);
  DenseMatrix<double> x(a.cols, static_cast<index_t>(state.range(0)));
  for (auto& v : x.data) v = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile_spmm(t, x).data.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * state.range(0));
}
BENCHMARK(BM_TileSpmm)->Arg(4)->Arg(16);

void BM_TileAdd(benchmark::State& state) {
  const Csr<double> a = gen::banded(static_cast<index_t>(state.range(0)), 8, 84);
  const Csr<double> b = gen::banded(static_cast<index_t>(state.range(0)), 12, 85);
  const TileMatrix<double> ta = csr_to_tile(a);
  const TileMatrix<double> tb = csr_to_tile(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile_add(ta, tb).nnz());
  }
  state.SetItemsProcessed(state.iterations() * (a.nnz() + b.nnz()));
}
BENCHMARK(BM_TileAdd)->Arg(2000)->Arg(8000);

void BM_TileTranspose(benchmark::State& state) {
  const Csr<double> a = gen::rmat(static_cast<int>(state.range(0)), 6.0, 86);
  const TileMatrix<double> t = csr_to_tile(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile_transpose(t).nnz());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_TileTranspose)->Arg(10)->Arg(13);

void BM_PairCacheVsRecompute(benchmark::State& state) {
  const Csr<double> a = gen::clustered_rows(1200, 4, 10, 87);
  const TileMatrix<double> t = csr_to_tile(a);
  TileSpgemmOptions opt;
  opt.cache_pairs = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile_spgemm(t, t, opt).c.nnz());
  }
}
BENCHMARK(BM_PairCacheVsRecompute)->Arg(0)->Arg(1);

// ------------------------------------------------------- symbolic kernel --

/// Word-packed vs scalar step-2 symbolic (ISSUE 5): dense_blocks keeps the
/// mask-OR phase dominant, so the whole-pipeline ratio tracks the kernel
/// ratio closely. The --regress harness measures step2_ms in isolation; this
/// gbench pair is the quick human-facing view of the same ablation.
void BM_SymbolicKernel(benchmark::State& state, SymbolicKernel kernel) {
  const Csr<double> a = gen::dense_blocks(static_cast<index_t>(state.range(0)), 16, 88);
  const TileMatrix<double> t = csr_to_tile(a);
  TileSpgemmOptions opt;
  opt.symbolic = kernel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile_spgemm(t, t, opt).c.nnz());
  }
}
void BM_SymbolicPacked(benchmark::State& s) { BM_SymbolicKernel(s, SymbolicKernel::kWordPacked); }
void BM_SymbolicScalar(benchmark::State& s) { BM_SymbolicKernel(s, SymbolicKernel::kScalar); }
BENCHMARK(BM_SymbolicPacked)->Arg(24)->Arg(64);
BENCHMARK(BM_SymbolicScalar)->Arg(24)->Arg(64);

// ------------------------------------------------------- dispatch levels --

/// Whole-pipeline view of the SIMD dispatch ladder (ISSUE 10): one run per
/// forced level on a mask-OR-heavy workload. Arg is the numeric
/// simd::Level; unavailable levels are skipped, mirroring the CI matrix.
void BM_SimdLevel(benchmark::State& state) {
  const auto level = static_cast<simd::Level>(state.range(0));
  if (!simd::level_available(level)) {
    state.SkipWithError("SIMD level unavailable on this host");
    return;
  }
  const Csr<double> a = gen::dense_blocks(48, 16, 89);
  const TileMatrix<double> t = csr_to_tile(a);
  TileSpgemmOptions opt;
  opt.simd = level;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile_spgemm(t, t, opt).c.nnz());
  }
  state.SetLabel(simd::level_name(level));
}
BENCHMARK(BM_SimdLevel)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

// Custom main: `--regress` switches to the machine-readable regression
// harness (regress_harness.cpp); `--simd-levels` prints the dispatch levels
// this build+host can execute, one per line (scripts/check.sh uses it to
// decide which TSG_SIMD values to force); anything else goes to
// google-benchmark.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--regress") {
      return tsg::bench::run_regress(argc, argv);
    }
    if (std::string_view(argv[i]) == "--simd-levels") {
      for (int l = 0; l < tsg::simd::kLevelCount; ++l) {
        const auto level = static_cast<tsg::simd::Level>(l);
        if (tsg::simd::level_available(level)) {
          std::printf("%s\n", tsg::simd::level_name(level));
        }
      }
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
