// Figure 12: CSR -> tiled format conversion time compared with the runtime
// of a single TileSpGEMM, across the benchmark suite ordered by flops. The
// paper's claim: conversion generally costs no more than ten SpGEMMs, and
// amortises to zero in applications (AMG) that chain products.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/spgemm_context.h"
#include "gen/suite.h"
#include "matrix/stats.h"

int main(int argc, char** argv) {
  using namespace tsg;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  bench::print_header("Fig. 12", "format conversion time vs single TileSpGEMM runtime");
  Table table({"matrix", "log10 flops", "convert ms", "spgemm ms", "convert/spgemm"});

  int over_10x = 0, total = 0;
  SpgemmContext ctx;  // one context for the whole sweep: pooled workspaces
  for (const auto& m : gen::fig6_suite()) {
    // Both times come from the context's own instrumentation: conversion is
    // accrued into the next run's `convert_ms`, the multiply into core_ms().
    double convert_ms = 1e300, spgemm_ms = 1e300;
    for (int rep = 0; rep < args.effective_reps(); ++rep) {
      const TileMatrix<double> tile = ctx.to_tile(m.a);
      const TileSpgemmResult<double> res = ctx.run(tile, tile);
      convert_ms = std::min(convert_ms, res.timings.convert_ms);
      spgemm_ms = std::min(spgemm_ms, res.timings.core_ms());
    }
    const double flops = static_cast<double>(spgemm_flops(m.a, m.a));
    const double ratio = spgemm_ms > 0 ? convert_ms / spgemm_ms : 0.0;
    table.add_row({m.name, fmt(std::log10(std::max(flops, 1.0)), 2), fmt(convert_ms, 3),
                   fmt(spgemm_ms, 3), fmt(ratio, 2)});
    if (ratio > 10.0) ++over_10x;
    ++total;
  }
  bench::emit(table, args);
  std::cout << over_10x << "/" << total
            << " matrices need more than 10 SpGEMM runtimes to convert\n";
  std::cout << "paper shape: conversion in general does not exceed ten single\n"
               "SpGEMM operations.\n";
  args.write_metrics();
  return 0;
}
