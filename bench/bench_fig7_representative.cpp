// Figure 7: double-precision C = A^2 on the 18 representative matrices
// (Table 2), all five methods, plus the Section 2.3 webbase-1M motivation
// (row-flops histogram + TileSpGEMM speedups over the row-row methods).
#include <iostream>

#include "bench_common.h"
#include "gen/representative.h"
#include "harness/regression.h"
#include "matrix/stats.h"

namespace {

using namespace tsg;
using bench::BenchArgs;

void run_fig7(const std::vector<gen::NamedMatrix>& suite, const BenchArgs& args) {
  bench::print_header("Fig. 7", "C = A^2 GFlops bars on the 18 representative matrices");
  const auto& algos = paper_algorithms();
  Table table([&] {
    std::vector<std::string> headers = {"matrix"};
    for (const auto& a : algos) headers.push_back(a.name + " GF");
    headers.push_back("best");
    return headers;
  }());

  std::vector<double> speedup_vs_best_rowrow;
  for (const auto& m : suite) {
    std::vector<std::string> cells = {m.name};
    double best = 0.0, tile_gf = 0.0, best_rowrow = 0.0;
    std::string best_name = "-";
    for (const auto& algo : algos) {
      const Measurement r = measure(m, algo, SpgemmOp::kASquared, args.effective_reps());
      cells.push_back(bench::gflops_or_fail(r));
      if (r.ok && r.gflops > best) {
        best = r.gflops;
        best_name = algo.name;
      }
      if (algo.is_tile) {
        tile_gf = r.ok ? r.gflops : 0.0;
      } else if (r.ok) {
        best_rowrow = std::max(best_rowrow, r.gflops);
      }
    }
    cells.push_back(best_name);
    table.add_row(cells);
    if (tile_gf > 0 && best_rowrow > 0) {
      speedup_vs_best_rowrow.push_back(tile_gf / best_rowrow);
    }
  }
  bench::emit(table, args);
  std::cout << "geomean TileSpGEMM speedup vs best row-row method per matrix: "
            << fmt(geometric_mean(speedup_vs_best_rowrow)) << "x\n";
}

void run_motivation(const std::vector<gen::NamedMatrix>& suite, const BenchArgs& args) {
  bench::print_header("Section 2.3 motivation (webbase-1M proxy)",
                      "row-flops imbalance histogram + speedups of the tiled method");
  for (const auto& m : suite) {
    if (m.name != "webbase-1M") continue;
    const RowFlopsHistogram h = row_flops_histogram(m.a, m.a);
    Table hist({"row flops decade", "rows"});
    for (int d = 0; d < RowFlopsHistogram::kDecades; ++d) {
      if (h.decade_count[static_cast<std::size_t>(d)] == 0) continue;
      hist.add_row({"10^" + std::to_string(d) + "..10^" + std::to_string(d + 1),
                    std::to_string(h.decade_count[static_cast<std::size_t>(d)])});
    }
    bench::emit(hist, args);
    std::cout << "max row flops: " << fmt_count(h.max_row_flops)
              << " (paper: 3 rows above 100K flops, majority under 100)\n";

    Table speedups({"baseline", "TileSpGEMM speedup"});
    Measurement tile;
    std::vector<Measurement> rows;
    for (const auto& algo : paper_algorithms()) {
      const Measurement r = measure(m, algo, SpgemmOp::kASquared, args.effective_reps());
      if (algo.is_tile) {
        tile = r;
      } else {
        rows.push_back(r);
      }
    }
    for (const auto& r : rows) {
      speedups.add_row({r.algorithm, r.ok && tile.ok ? fmt(tile.gflops / r.gflops) + "x"
                                                     : "baseline failed"});
    }
    bench::emit(speedups, args);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const auto suite = tsg::gen::representative_suite();
  run_fig7(suite, args);
  run_motivation(suite, args);
  args.write_metrics();
  return 0;
}
