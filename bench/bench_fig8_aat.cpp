// Figure 8: double-precision C = A*A^T on the six asymmetric matrices of
// the representative set, all five methods.
#include <iostream>

#include "bench_common.h"
#include "gen/representative.h"

int main(int argc, char** argv) {
  using namespace tsg;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const auto suite = gen::asymmetric_suite();

  bench::print_header("Fig. 8", "C = A*A^T GFlops on the 6 asymmetric representatives");
  const auto& algos = paper_algorithms();
  Table table([&] {
    std::vector<std::string> headers = {"matrix"};
    for (const auto& a : algos) headers.push_back(a.name + " GF");
    return headers;
  }());

  for (const auto& m : suite) {
    std::vector<std::string> cells = {m.name};
    for (const auto& algo : algos) {
      const Measurement r = measure(m, algo, SpgemmOp::kAAT, args.effective_reps());
      cells.push_back(bench::gflops_or_fail(r));
    }
    table.add_row(cells);
  }
  bench::emit(table, args);
  std::cout << "paper shape: TileSpGEMM completes all six; cuSPARSE and NSPARSE\n"
               "fail on webbase-1M (out of memory) while the tiled method needs no\n"
               "global intermediate storage.\n";
  args.write_metrics();
  return 0;
}
