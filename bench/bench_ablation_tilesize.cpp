// Tile-size ablation (Section 3.2): "the reason of setting the tile size
// to 16-by-16 is fully utilizing the 8-bit unsigned char for indices and
// pointers and 16-bit unsigned short for bit masks. Other tile sizes (such
// as 4-by-4 and 8-by-8) cannot saturate the 8-bit data type."
//
// Measures storage and simplified-SpGEMM runtime of the dimension-generic
// block pipeline at 8, 16 and 32 across structure classes.
#include <iostream>

#include "bench_common.h"
#include "common/timer.h"
#include "core/block_experimental.h"
#include "gen/representative.h"

namespace {

using namespace tsg;
using experimental::block_spgemm;
using experimental::csr_to_block;

template <int Dim>
void measure_dim(const Csr<double>& a, int reps, std::size_t& bytes, double& ms,
                 double& nnz_per_block) {
  const auto m = csr_to_block<Dim>(a);
  bytes = m.bytes();
  nnz_per_block =
      m.num_blocks() > 0
          ? static_cast<double>(m.nnz()) / static_cast<double>(m.num_blocks())
          : 0.0;
  ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    (void)block_spgemm(m, m);
    ms = std::min(ms, t.milliseconds());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  bench::print_header("Ablation: tile size 8 vs 16 vs 32",
                      "Section 3.2's 16x16 rationale, measured");
  Table table({"matrix", "KB (8/16/32)", "nnz/blk (8/16/32)", "spgemm ms (8/16/32)"});

  for (const auto& m : gen::representative_suite()) {
    // The simplified dense-accumulator kernel is O(pairs * Dim^2); keep the
    // sweep to matrices where all three sizes finish quickly.
    if (m.a.nnz() > 250000) continue;
    std::size_t b8, b16, b32;
    double ms8, ms16, ms32, o8, o16, o32;
    measure_dim<8>(m.a, args.effective_reps(), b8, ms8, o8);
    measure_dim<16>(m.a, args.effective_reps(), b16, ms16, o16);
    measure_dim<32>(m.a, args.effective_reps(), b32, ms32, o32);
    table.add_row({m.name,
                   fmt(b8 / 1024.0, 0) + " / " + fmt(b16 / 1024.0, 0) + " / " +
                       fmt(b32 / 1024.0, 0),
                   fmt(o8, 1) + " / " + fmt(o16, 1) + " / " + fmt(o32, 1),
                   fmt(ms8, 1) + " / " + fmt(ms16, 1) + " / " + fmt(ms32, 1)});
  }
  bench::emit(table, args);
  std::cout << "reading: on FEM-class matrices the *storage* minimum sits at 16 —\n"
               "exactly the paper's uint8/uint16-saturation argument (8 fragments\n"
               "into more blocks, 32 pays wider masks and pointers). Runtime on a\n"
               "serial CPU keeps improving toward 32 because fewer blocks mean less\n"
               "per-block bookkeeping; on a GPU that option is closed — a 32x32\n"
               "block (up to 1024 nonzeros, 4 KB masks+accumulator) no longer fits\n"
               "the per-warp scratchpad budget that the 16x16 design is built\n"
               "around.\n";
  args.write_metrics();
  return 0;
}
