// Machine-readable bench-regression harness (the `--regress` mode of
// bench_micro_kernels).
//
// Measures the hot-path kernels — step-2 symbolic (word-packed vs the
// scalar reference), step-3 numeric (cached pairs vs the paper's recompute
// policy), and the tuned end-to-end core — as per-kernel medians over a
// deterministic step2-dominated synthetic suite (src/gen), and emits /
// compares a flat JSON so CI can gate on regressions:
//
//   bench_micro_kernels --regress --emit BENCH_baseline.json
//   bench_micro_kernels --regress --compare BENCH_baseline.json
//       --tolerance 0.15 --assert-speedup 1.2 [--emit current.json]
//
// `--compare` fails (exit 1) when any step2/step3 kernel's median is more
// than `tolerance` slower than the committed baseline; `--assert-speedup`
// fails when the suite-median step2 speedup of the word-packed kernel over
// the scalar reference drops below the given ratio. Knobs: --reps N
// (TSG_BENCH_REPS), --scale S (TSG_BENCH_SCALE) shrink or grow the suite
// for CI wall-time budgets.
#pragma once

namespace tsg::bench {

/// Entry point of the regression harness; returns the process exit code.
int run_regress(int argc, char** argv);

}  // namespace tsg::bench
