// Figure 10: runtime breakdown of the TileSpGEMM algorithm — the three
// steps plus memory allocation — on the 18 representative matrices
// (C = A^2, operands pre-converted to tile format).
#include <algorithm>
#include <array>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "core/tile_spgemm.h"
#include "gen/representative.h"
#include "obs/metrics.h"

int main(int argc, char** argv) {
  using namespace tsg;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  bench::print_header("Fig. 10", "TileSpGEMM runtime breakdown: steps 1-3 + allocation");
  Table table({"matrix", "step1 %", "step2 %", "step3 %", "alloc %", "total ms",
               "bins 0/1/2/3"});

  // Sweep totals come from the metrics registry (one delta across the whole
  // loop) rather than summed timing fields; per-row numbers stay best-of-reps.
  const obs::MetricsSnapshot sweep_start = obs::MetricsRegistry::instance().snapshot();
  double s1 = 0, s2 = 0, s3 = 0, al = 0;
  std::size_t ws_peak = 0;
  int counted = 0;
  for (const auto& m : gen::representative_suite()) {
    const TileMatrix<double> t = csr_to_tile(m.a);
    TileSpgemmTimings best;
    double best_total = -1.0;
    for (int rep = 0; rep < args.effective_reps(); ++rep) {
      const TileSpgemmResult<double> res = tile_spgemm(t, t);
      if (best_total < 0 || res.timings.core_ms() < best_total) {
        best = res.timings;
        best_total = best.core_ms();
      }
    }
    const double total = best.core_ms();
    auto pct = [&](double v) { return total > 0 ? 100.0 * v / total : 0.0; };
    std::string bins;
    for (int bin = 0; bin < kCostBins; ++bin) {
      bins += (bin ? "/" : "") + std::to_string(best.bin_tiles[bin]);
    }
    table.add_row({m.name, fmt(pct(best.step1_ms), 1), fmt(pct(best.step2_ms), 1),
                   fmt(pct(best.step3_ms), 1), fmt(pct(best.alloc_ms), 1), fmt(total),
                   bins});
    s1 += pct(best.step1_ms);
    s2 += pct(best.step2_ms);
    s3 += pct(best.step3_ms);
    al += pct(best.alloc_ms);
    ws_peak = std::max(ws_peak, best.workspace_bytes);
    ++counted;
  }
  const obs::MetricsSnapshot sweep = obs::MetricsSnapshot::delta(
      sweep_start, obs::MetricsRegistry::instance().snapshot());
  bench::emit(table, args);
  std::cout << "mean shares: step1 " << fmt(s1 / counted, 1) << "%, step2 "
            << fmt(s2 / counted, 1) << "%, step3 " << fmt(s3 / counted, 1) << "%, alloc "
            << fmt(al / counted, 1) << "%\n";
  // Registry totals cover every repetition, not just the best one per matrix.
  std::cout << "scheduled C-tiles (all reps): " << fmt_count(sweep.counter("spgemm.tiles.scheduled"))
            << " over " << fmt_count(sweep.counter("spgemm.runs"))
            << " runs (cost bins light->heavy: ";
  for (int bin = 0; bin < kCostBins; ++bin) {
    std::cout << (bin ? "/" : "")
              << fmt_count(sweep.counter("spgemm.tiles.bin" + std::to_string(bin)));
  }
  std::cout << "), max workspace " << fmt_bytes(ws_peak) << "\n";
  std::cout << "paper shape: step1 < 5%, step2 ~15%, step3 ~70%, alloc ~20% on average.\n";
  args.write_metrics();
  return 0;
}
