// Context reuse: allocation traffic and per-step time of an iterated
// workload (Markov-clustering-style repeated squaring) through transient
// per-call contexts vs one reused SpgemmContext. The reused context keeps
// its workspace pool (scratch, pair caches, prefix buffers) alive across
// calls, so after a warm-up iteration the per-iteration allocated bytes
// drop to just the output matrix C.
#include <array>
#include <iostream>

#include "bench_common.h"
#include "common/memory.h"
#include "core/spgemm_context.h"
#include "gen/generators.h"

int main(int argc, char** argv) {
  using namespace tsg;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  constexpr int kIters = 8;

  bench::print_header("context reuse",
                      "per-iteration allocation traffic: transient vs reused context");

  struct Sample {
    double alloc_mb = 0.0;  // bytes newly allocated during the iteration
    TileSpgemmTimings t;
  };
  std::array<Sample, kIters> transient_it, reused_it;

  // Pair caching on both sides: the cache is the largest scratch buffer
  // (one entry per matched tile pair), so it is also where pooling pays
  // the most.
  TileSpgemmOptions opts;
  opts.cache_pairs = true;
  const Csr<double> a = gen::rmat(12, 6.0, 7);
  const TileMatrix<double> ta = csr_to_tile(a);
  auto& tracker = MemoryTracker::instance();

  // Transient path: the free function builds (and tears down) a fresh
  // context — and therefore a fresh workspace pool — on every call.
  for (int i = 0; i < kIters; ++i) {
    const std::int64_t before = tracker.allocated_total();
    const TileSpgemmResult<double> res = tile_spgemm(ta, ta, opts);
    transient_it[i].alloc_mb =
        static_cast<double>(tracker.allocated_total() - before) / (1024.0 * 1024.0);
    transient_it[i].t = res.timings;
  }

  // Reused path: one context for all iterations, same kernel options.
  SpgemmContext ctx(SpgemmContext::Config{}.with_pair_cache(true));
  for (int i = 0; i < kIters; ++i) {
    const std::int64_t before = tracker.allocated_total();
    const TileSpgemmResult<double> res = ctx.run(ta, ta);
    reused_it[i].alloc_mb =
        static_cast<double>(tracker.allocated_total() - before) / (1024.0 * 1024.0);
    reused_it[i].t = res.timings;
  }

  Table table({"iter", "transient alloc MB", "reused alloc MB", "transient core ms",
               "reused core ms", "transient s1/s2/s3 ms", "reused s1/s2/s3 ms"});
  double trans_tail = 0.0, reuse_tail = 0.0;
  for (int i = 0; i < kIters; ++i) {
    const auto& tr = transient_it[i];
    const auto& re = reused_it[i];
    table.add_row({std::to_string(i), fmt(tr.alloc_mb), fmt(re.alloc_mb),
                   fmt(tr.t.core_ms()), fmt(re.t.core_ms()),
                   fmt(tr.t.step1_ms) + "/" + fmt(tr.t.step2_ms) + "/" +
                       fmt(tr.t.step3_ms),
                   fmt(re.t.step1_ms) + "/" + fmt(re.t.step2_ms) + "/" +
                       fmt(re.t.step3_ms)});
    if (i > 0) {  // skip the warm-up iteration that fills the pool
      trans_tail += tr.alloc_mb;
      reuse_tail += re.alloc_mb;
    }
  }
  bench::emit(table, args);

  const auto& last = reused_it[kIters - 1].t;
  std::cout << "steady-state alloc/iter: transient " << fmt(trans_tail / (kIters - 1))
            << " MB, reused " << fmt(reuse_tail / (kIters - 1)) << " MB ("
            << fmt(trans_tail > 0 ? 100.0 * (1.0 - reuse_tail / trans_tail) : 0.0, 1)
            << "% less)\n";
  std::cout << "pooled workspace high-water: " << fmt_bytes(last.workspace_bytes)
            << ", scheduled tiles " << fmt_count(last.scheduled_tiles) << "\n";
  std::cout << "expected shape: reused alloc/iter is well below transient once the\n"
               "pool is warm; step times match since both paths run the same kernels.\n";
  args.write_metrics();
  return 0;
}
