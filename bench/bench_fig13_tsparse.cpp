// Figure 13: TileSpGEMM vs tSparse, both with half-precision inputs and
// single-precision accumulation, C = A^2 on the 16-matrix tSparse dataset.
#include <iostream>

#include "bench_common.h"
#include "baselines/tsparse.h"
#include "common/half.h"
#include "common/timer.h"
#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "gen/representative.h"
#include "harness/regression.h"
#include "matrix/stats.h"

int main(int argc, char** argv) {
  using namespace tsg;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  bench::print_header("Fig. 13",
                      "TileSpGEMM vs tSparse (half in / single out), 16-matrix dataset");
  Table table({"matrix", "tSparse GF", "TileSpGEMM GF", "speedup"});

  std::vector<double> speedups;
  for (const auto& m : gen::tsparse_suite()) {
    Csr<float> a = gen::cast_values<float>(m.a);
    // Both contenders see fp16-rounded inputs.
    for (auto& v : a.val) v = static_cast<float>(half(v));
    const double flops = static_cast<double>(spgemm_flops(a, a));

    double ts_ms = 1e300, tile_ms = 1e300;
    bool ts_ok = true;
    try {
      for (int rep = 0; rep < args.effective_reps(); ++rep) {
        Timer t;
        (void)spgemm_tsparse(a, a);
        ts_ms = std::min(ts_ms, t.milliseconds());
      }
    } catch (const std::exception&) {
      ts_ok = false;
    }
    const TileMatrix<float> ta = csr_to_tile(a);
    for (int rep = 0; rep < args.effective_reps(); ++rep) {
      Timer t;
      (void)tile_spgemm(ta, ta);
      tile_ms = std::min(tile_ms, t.milliseconds());
    }

    const double ts_gf = ts_ok ? flops / (ts_ms * 1e6) : 0.0;
    const double tile_gf = flops / (tile_ms * 1e6);
    table.add_row({m.name, ts_ok ? fmt(ts_gf) : "0.00", fmt(tile_gf),
                   ts_ok ? fmt(tile_gf / ts_gf) + "x" : "-"});
    if (ts_ok) speedups.push_back(tile_gf / ts_gf);
  }
  bench::emit(table, args);
  double max_speedup = 0;
  for (double s : speedups) max_speedup = std::max(max_speedup, s);
  std::cout << "geomean speedup " << fmt(geometric_mean(speedups)) << "x, max "
            << fmt(max_speedup) << "x\n";
  std::cout << "paper shape: TileSpGEMM beats tSparse on all 16 matrices;\n"
               "geomean 1.98x, max 4.04x — dense tile math wastes intra-tile\n"
               "sparsity even with hardware acceleration.\n";
  args.write_metrics();
  return 0;
}
